"""§7.2.2 microbenchmarks: latency, power, and the headline rate gain.

Latency: preamble ~50 ms and online training ~80 ms are fixed by the frame
format; payload airtime scales with rate (258 ms at 8 Kbps for 128 bytes);
demodulation wall time must stay under the payload airtime for pipelined
real-time operation and is measured here on the actual DFE.

Power: the tag draws ~0.8 mW at both 4 and 8 Kbps because the DSM symbol
length (and hence the toggle schedule) is rate-invariant.

Headline: 8 Kbps measured / 32 Kbps emulated over the 250 bps trend-OOK
baseline = the paper's 32x / 128x.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.lcm.array import LCMArray
from repro.lcm.power import TagPowerModel
from repro.modem.config import ModemConfig, preset_for_rate
from repro.modem.dsm_pqam import DsmPqamModulator
from repro.modem.ook import TrendOOKModem
from repro.phy.frame import FrameFormat
from repro.utils.rng import ensure_rng

__all__ = ["headline_rate_gain", "latency_report", "power_report"]


@dataclass
class LatencyRow:
    """Latency budget of one rate setting (seconds)."""

    rate_bps: float
    preamble_s: float
    training_s: float
    payload_s: float
    demod_s: float

    @property
    def total_s(self) -> float:
        """End-to-end packet latency (transmission + demodulation overlap
        ignored, like the paper's headline numbers)."""
        return self.preamble_s + self.training_s + self.payload_s + self.demod_s

    @property
    def realtime_capable(self) -> bool:
        """Demodulation faster than payload airtime -> pipelined RX keeps up."""
        return self.demod_s < self.payload_s


def latency_report(
    rates_bps: list[float] | None = None,
    payload_bytes: int = 128,
    k_branches: int = 16,
    rng=51,
) -> list[LatencyRow]:
    """Measure the latency budget with paper-sized frames."""
    from repro.experiments.fig18 import emulated_packet_ber  # cheap demod driver

    rates_bps = rates_bps or [4000, 8000]
    gen = ensure_rng(rng)
    rows = []
    for rate in rates_bps:
        config = preset_for_rate(rate)
        frame = FrameFormat.paper_default(config, payload_bytes=payload_bytes)
        durations = frame.section_durations()
        t0 = time.perf_counter()
        emulated_packet_ber(
            config,
            snr_db=40.0,
            n_symbols=frame.payload_slots,
            k_branches=k_branches,
            rng=gen,
        )
        demod_s = time.perf_counter() - t0
        rows.append(
            LatencyRow(
                rate_bps=rate,
                preamble_s=durations["preamble"],
                training_s=durations["training"],
                payload_s=durations["payload"],
                demod_s=demod_s,
            )
        )
    return rows


def power_report(
    rates_bps: list[float] | None = None,
    payload_bytes: int = 64,
    rng=52,
) -> dict[float, float]:
    """Tag power (watts) per rate — expected to be rate-invariant."""
    rates_bps = rates_bps or [4000, 8000]
    gen = ensure_rng(rng)
    model = TagPowerModel()
    out: dict[float, float] = {}
    for rate in rates_bps:
        config = preset_for_rate(rate)
        array = LCMArray.build(
            groups_per_channel=config.dsm_order,
            levels_per_group=config.levels_per_axis,
        )
        modulator = DsmPqamModulator(config, array)
        frame = FrameFormat(config, payload_bytes=payload_bytes)
        payload = gen.integers(0, 256, size=payload_bytes, dtype=np.uint8).tobytes()
        levels_i, levels_q = frame.frame_levels(payload)
        drive = modulator.drive_for_levels(levels_i, levels_q)
        out[rate] = model.mean_power(array, drive, config.slot_s)
    return out


def headline_rate_gain(emulated_rate_bps: float = 32000) -> dict[str, float]:
    """The 32x / 128x headline: RetroTurbo rates over the OOK baseline."""
    array = LCMArray.build(groups_per_channel=2, levels_per_group=16)
    ook = TrendOOKModem(array, symbol_s=4e-3)
    experimental = ModemConfig().rate_bps
    return {
        "ook_bps": ook.rate_bps,
        "experimental_bps": experimental,
        "emulated_bps": float(emulated_rate_bps),
        "experimental_gain": experimental / ook.rate_bps,
        "emulated_gain": emulated_rate_bps / ook.rate_bps,
    }
