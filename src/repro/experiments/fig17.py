"""Fig 17 harnesses: DFE-branch microbenchmark and channel-training memory.

17a: single-branch DFE loses noticeably; 16 branches sit near the optimal
Viterbi detector.  Exact Viterbi needs ``P^((V-1)L + L - 1)`` states, so —
exactly like the paper's tractability argument — the comparison runs at a
reduced operating point where the full trellis fits (P = 4, L = 4, V = 1);
a wide-beam merged DFE serves as the near-MLSE proxy at the default point.

17b: training memory V = 1 leaves a system error floor even at high SNR
(the tail effect is unmodelled); V = 2 recovers almost all of it; V = 3
adds little for double the training cost.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import SweepPoint, _make_simulator
from repro.modem.config import ModemConfig
from repro.utils.rng import ensure_rng

__all__ = ["dfe_comparison", "dfe_comparison_grid", "training_memory_sweep"]

#: Reduced operating point at which exact Viterbi is tractable.
VITERBI_CONFIG = ModemConfig(dsm_order=4, pqam_order=4, slot_s=1.0e-3, tail_memory=1)


def dfe_comparison(
    distances_m: list[float] | None = None,
    n_packets: int = 4,
    config: ModemConfig | None = None,
    rng=21,
) -> dict[str, list[SweepPoint]]:
    """Fig 17a: BER vs distance for 1-branch DFE, 16-branch DFE, Viterbi."""
    config = config or VITERBI_CONFIG
    distances_m = distances_m or [6.0, 8.0, 10.0, 11.0, 12.0, 13.0]
    viterbi_k = config.pqam_order ** (
        (config.tail_memory - 1) * config.dsm_order + config.dsm_order - 1
    )
    if viterbi_k > 65_536:
        raise ValueError("config too large for exact Viterbi; reduce P/L/V")
    gen = ensure_rng(rng)
    out: dict[str, list[SweepPoint]] = {}
    for label, k in (("dfe_1", 1), ("dfe_16", 16), ("viterbi", viterbi_k)):
        points = []
        for d in distances_m:
            sim = _make_simulator(config=config, distance_m=d, k_branches=k, rng=gen)
            m = sim.measure_ber(n_packets=n_packets, rng=gen)
            points.append(SweepPoint(x=d, ber=m.ber))
        out[label] = points
    return out


def dfe_comparison_grid(
    distances_m: list[float] | None = None,
    n_packets: int = 4,
    config: ModemConfig | None = None,
    n_workers: int | None = 1,
    root_seed: int = 21,
    observer=None,
    metrics_out=None,
    journal=None,
    shard=None,
    sweep: dict | None = None,
) -> dict[str, list[SweepPoint]]:
    """Fig 17a through the batched packet engine (per-cell spawned seeds).

    ``journal``/``shard``/``sweep`` select the crash-safe resumable engine —
    see :func:`repro.experiments.sweeps.run_grid`.
    """
    from repro.experiments.batch import make_grid, rows_to_sweeps
    from repro.experiments.common import emit_sweep_report, simulate_grid_task
    from repro.experiments.sweeps import run_grid
    from repro.obs import Observer

    if observer is None and metrics_out is not None:
        observer = Observer()

    config = config or VITERBI_CONFIG
    distances_m = distances_m or [6.0, 8.0, 10.0, 11.0, 12.0, 13.0]
    viterbi_k = config.pqam_order ** (
        (config.tail_memory - 1) * config.dsm_order + config.dsm_order - 1
    )
    if viterbi_k > 65_536:
        raise ValueError("config too large for exact Viterbi; reduce P/L/V")
    schemes = {
        label: {"config": config, "k_branches": k, "n_packets": n_packets}
        for label, k in (("dfe_1", 1), ("dfe_16", 16), ("viterbi", viterbi_k))
    }
    tasks = make_grid(schemes, distances_m, x_key="distance_m")
    rows = run_grid(
        simulate_grid_task,
        tasks,
        n_workers=n_workers,
        root_seed=root_seed,
        observer=observer,
        journal=journal,
        shard=shard,
        **(sweep or {}),
    )
    out = rows_to_sweeps(rows)
    if observer is not None:
        emit_sweep_report(
            observer,
            metrics_out,
            scenario={"figure": "17a", "distances_m": distances_m},
            summary={
                label: {"mean_ber": float(sum(p.ber for p in pts) / len(pts))}
                for label, pts in out.items()
            },
        )
    return out


def training_memory_sweep(
    memories: list[int] | None = None,
    distances_m: list[float] | None = None,
    n_packets: int = 4,
    rng=22,
) -> dict[int, list[SweepPoint]]:
    """Fig 17b: BER vs distance for tail-memory V = 1, 2, 3."""
    memories = memories or [1, 2, 3]
    distances_m = distances_m or [2.0, 4.0, 6.0, 7.5]
    gen = ensure_rng(rng)
    base = ModemConfig()
    out: dict[int, list[SweepPoint]] = {}
    for v in memories:
        config = replace(base, tail_memory=v)
        points = []
        for d in distances_m:
            sim = _make_simulator(config=config, distance_m=d, rng=gen)
            m = sim.measure_ber(n_packets=n_packets, rng=gen)
            points.append(SweepPoint(x=d, ber=m.ber))
        out[v] = points
    return out
