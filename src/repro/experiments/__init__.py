"""Experiment harnesses: one module per table/figure of the paper's
evaluation (§5 and §7), shared by the benchmark suite and the examples.

Every harness returns plain-data rows and provides a ``print_table`` style
textual rendering mirroring what the paper reports, so benchmark runs read
as paper-versus-measured comparisons.
"""

from repro.experiments.batch import BatchRunner, GridTask, make_grid, rows_to_sweeps
from repro.experiments.common import (
    SweepPoint,
    format_table,
    make_simulator,
    simulate_grid_task,
)
from repro.experiments.fig16 import (
    ambient_sweep,
    rate_vs_distance,
    rate_vs_distance_grid,
    roll_sweep,
    working_range,
    yaw_sweep,
)
from repro.experiments.fig17 import dfe_comparison, dfe_comparison_grid, training_memory_sweep
from repro.experiments.fig18 import (
    coding_goodput_sweep,
    emulated_ber_vs_snr,
    emulated_ber_vs_snr_batched,
    emulated_packet_ber,
    emulated_packet_bers_block,
    profile_from_waterfalls,
    rate_adaptation_gain,
    waterfall_threshold,
)
from repro.experiments.micro import (
    headline_rate_gain,
    latency_report,
    power_report,
)
from repro.experiments.mobility import MobileLinkSimulator, mobility_resync_sweep
from repro.experiments.multiaccess import ConcurrentUplinkResult, concurrent_uplink_study
from repro.experiments.network_scale import fleet_scale_task, network_scale_grid
from repro.experiments.polarization_fidelity import (
    format_polarization_report,
    polarization_fidelity_grid,
    polarization_task,
)
from repro.experiments.sweeps import (
    ShardSpec,
    SweepResult,
    SweepRunner,
    canonical_records,
    journal_rows,
    merge_journals,
    read_journal,
    run_grid,
    task_fingerprint,
)
from repro.experiments.table4 import mobility_study, mobility_study_grid
from repro.experiments.trajectory_study import (
    format_trajectory_report,
    trajectory_study_grid,
    trajectory_task,
)

__all__ = [
    "BatchRunner",
    "ConcurrentUplinkResult",
    "GridTask",
    "MobileLinkSimulator",
    "ShardSpec",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "ambient_sweep",
    "canonical_records",
    "coding_goodput_sweep",
    "concurrent_uplink_study",
    "dfe_comparison",
    "dfe_comparison_grid",
    "emulated_ber_vs_snr",
    "emulated_ber_vs_snr_batched",
    "emulated_packet_ber",
    "emulated_packet_bers_block",
    "format_polarization_report",
    "format_table",
    "format_trajectory_report",
    "headline_rate_gain",
    "journal_rows",
    "latency_report",
    "make_grid",
    "make_simulator",
    "merge_journals",
    "fleet_scale_task",
    "mobility_resync_sweep",
    "mobility_study",
    "mobility_study_grid",
    "network_scale_grid",
    "polarization_fidelity_grid",
    "polarization_task",
    "power_report",
    "read_journal",
    "run_grid",
    "profile_from_waterfalls",
    "rate_adaptation_gain",
    "rate_vs_distance",
    "rate_vs_distance_grid",
    "roll_sweep",
    "rows_to_sweeps",
    "simulate_grid_task",
    "task_fingerprint",
    "trajectory_study_grid",
    "trajectory_task",
    "training_memory_sweep",
    "waterfall_threshold",
    "working_range",
    "yaw_sweep",
]
