"""Table 4 harness: BER under ambient human mobility.

Five test cases (no human; one person walking 10 cm off LoS; one walking
behind the tag; one working 5 cm off LoS; three walking around the LoS) —
the paper measures < 0.3% BER in all of them thanks to downlink
directionality and uplink retroreflectivity.
"""

from __future__ import annotations

from repro.experiments.common import SweepPoint, _make_simulator
from repro.optics.ambient import MOBILITY_CASES
from repro.utils.rng import ensure_rng

__all__ = ["mobility_study", "mobility_study_grid"]


def mobility_study(
    distance_m: float = 5.0,
    n_packets: int = 6,
    rng=41,
) -> dict[str, SweepPoint]:
    """BER for each Table 4 mobility case at the default link."""
    gen = ensure_rng(rng)
    out: dict[str, SweepPoint] = {}
    for name, mobility in MOBILITY_CASES.items():
        sim = _make_simulator(distance_m=distance_m, mobility=mobility, rng=gen)
        m = sim.measure_ber(n_packets=n_packets, rng=gen)
        out[name] = SweepPoint(x=mobility.rate_hz, ber=m.ber)
    return out


def mobility_study_grid(
    cases: list[str] | None = None,
    distance_m: float = 5.0,
    n_packets: int = 6,
    n_workers: int | None = 1,
    root_seed: int = 41,
    observer=None,
    metrics_out=None,
    journal=None,
    shard=None,
    sweep: dict | None = None,
) -> dict[str, SweepPoint]:
    """Table 4 through the batched packet engine (per-case spawned seeds).

    One grid cell per mobility case, all at the same link distance.
    ``journal``/``shard``/``sweep`` select the crash-safe resumable engine —
    see :func:`repro.experiments.sweeps.run_grid`.
    """
    from repro.experiments.batch import make_grid
    from repro.experiments.common import emit_sweep_report, simulate_grid_task
    from repro.experiments.sweeps import run_grid
    from repro.obs import Observer

    if observer is None and metrics_out is not None:
        observer = Observer()

    names = cases or list(MOBILITY_CASES)
    unknown = [name for name in names if name not in MOBILITY_CASES]
    if unknown:
        known = ", ".join(sorted(MOBILITY_CASES))
        raise ValueError(f"unknown mobility case(s) {unknown}; known: {known}")
    schemes = {
        name: {"mobility": MOBILITY_CASES[name], "n_packets": n_packets} for name in names
    }
    tasks = make_grid(schemes, [distance_m], x_key="distance_m")
    rows = run_grid(
        simulate_grid_task,
        tasks,
        n_workers=n_workers,
        root_seed=root_seed,
        observer=observer,
        journal=journal,
        shard=shard,
        **(sweep or {}),
    )
    out = {
        row["scheme"]: SweepPoint(
            x=MOBILITY_CASES[row["scheme"]].rate_hz,
            ber=row["ber"],
            extras={"packet_error_rate": row["packet_error_rate"]},
        )
        for row in rows
    }
    if observer is not None:
        emit_sweep_report(
            observer,
            metrics_out,
            scenario={"figure": "table4", "cases": names, "distance_m": distance_m},
            summary={name: {"ber": point.ber} for name, point in out.items()},
        )
    return out
