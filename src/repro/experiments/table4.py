"""Table 4 harness: BER under ambient human mobility.

Five test cases (no human; one person walking 10 cm off LoS; one walking
behind the tag; one working 5 cm off LoS; three walking around the LoS) —
the paper measures < 0.3% BER in all of them thanks to downlink
directionality and uplink retroreflectivity.
"""

from __future__ import annotations

from repro.experiments.common import SweepPoint, _make_simulator
from repro.optics.ambient import MOBILITY_CASES
from repro.utils.rng import ensure_rng

__all__ = ["mobility_study"]


def mobility_study(
    distance_m: float = 5.0,
    n_packets: int = 6,
    rng=41,
) -> dict[str, SweepPoint]:
    """BER for each Table 4 mobility case at the default link."""
    gen = ensure_rng(rng)
    out: dict[str, SweepPoint] = {}
    for name, mobility in MOBILITY_CASES.items():
        sim = _make_simulator(distance_m=distance_m, mobility=mobility, rng=gen)
        m = sim.measure_ber(n_packets=n_packets, rng=gen)
        out[name] = SweepPoint(x=mobility.rate_hz, ber=m.ber)
    return out
