"""Fleet-scale sweep: goodput and recovery vs tag count under chaos.

The network-layer analogue of the figure harnesses: a grid of
``scenario x n_tags`` cells, each one full :class:`~repro.network.fleet.
FleetSimulator` run, fanned over the sharded sweep engine.  Every cell is
a pure function of its grid index and the root seed (the fleet's own seed
is drawn from the cell's spawned generator), so rows — including each
run's ``timeline_digest`` — are bit-identical across worker counts,
shards, and resumes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.batch import GridTask, make_grid

__all__ = ["fleet_scale_task", "network_scale_grid"]

#: Scenario name meaning "no chaos plan" (the control column).
BASELINE = "none"


def fleet_scale_task(task: GridTask, rng: np.random.Generator) -> dict:
    """One grid cell: a full fleet run under a named chaos scenario.

    Module-level (process pools pickle it).  The fleet's root seed is the
    first draw from the cell's index-derived generator, so the simulation
    inherits the batch engine's bit-identity guarantee without threading
    generators through the simulator.
    """
    from repro.faults.network import network_scenario
    from repro.network.fleet import FleetConfig, FleetSimulator

    kwargs = task.kwargs
    scenario = kwargs.get("scenario", BASELINE)
    config = FleetConfig(
        n_readers=int(kwargs.get("n_readers", 3)),
        n_tags=int(kwargs["n_tags"]),
        duration_s=float(kwargs.get("duration_s", 30.0)),
    )
    plan = None
    if scenario != BASELINE:
        plan = network_scenario(scenario, config.duration_s)
    fleet_seed = int(rng.integers(2**63))
    result = FleetSimulator(
        config,
        fault_plan=plan,
        root_seed=fleet_seed,
        engine=kwargs.get("engine", "store"),
    ).run()
    row = result.row()
    row["scenario"] = scenario
    row["contract_violation"] = (
        str(result.check_contract()) if result.check_contract() else ""
    )
    return row


def network_scale_grid(
    scenarios: list[str] | None = None,
    n_tags_list: list[int] | None = None,
    n_readers: int = 3,
    duration_s: float = 30.0,
    n_workers: int | None = 1,
    root_seed: int = 0,
    observer=None,
    metrics_out=None,
    journal=None,
    shard=None,
    sweep: dict | None = None,
    engine: str = "store",
) -> dict[str, list[dict]]:
    """Fleet robustness matrix: ``scenario x n_tags`` through the engine.

    Returns rows grouped by scenario, each row the flat
    :meth:`~repro.network.fleet.FleetResult.row` record plus grid
    coordinates.  ``journal``/``shard``/``sweep`` select the crash-safe
    resumable engine — see :func:`repro.experiments.sweeps.run_grid`.

    ``engine`` selects the fleet serving engine (``"store"`` vectorized /
    ``"reference"`` frozen scalar — bit-identical rows either way).  The
    default is omitted from the task kwargs so journals written before
    the engine knob existed replay without a signature mismatch.
    """
    from repro.experiments.common import emit_sweep_report
    from repro.experiments.sweeps import run_grid
    from repro.faults.network import network_scenario_names
    from repro.obs import Observer

    if observer is None and metrics_out is not None:
        observer = Observer()

    names = scenarios or [BASELINE, *network_scenario_names()]
    known = {BASELINE, *network_scenario_names()}
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(f"unknown network scenario(s) {unknown}; known: {sorted(known)}")
    xs = n_tags_list or [4, 12, 24]
    if engine not in ("store", "reference"):
        raise ValueError(f"unknown fleet engine {engine!r}")
    extra = {} if engine == "store" else {"engine": engine}
    schemes = {
        name: {"scenario": name, "n_readers": n_readers, "duration_s": duration_s, **extra}
        for name in names
    }
    tasks = make_grid(schemes, xs, x_key="n_tags")
    rows = run_grid(
        fleet_scale_task,
        tasks,
        n_workers=n_workers,
        root_seed=root_seed,
        observer=observer,
        journal=journal,
        shard=shard,
        **(sweep or {}),
    )
    out: dict[str, list[dict]] = {name: [] for name in names}
    for row in rows:
        out[row["scheme"]].append(row)
    if observer is not None:
        emit_sweep_report(
            observer,
            metrics_out,
            scenario={
                "figure": "network_scale",
                "scenarios": names,
                "n_tags": xs,
                "n_readers": n_readers,
                "duration_s": duration_s,
            },
            summary={
                name: {
                    "goodput_bps": [r["goodput_bps"] for r in rows_],
                    "orphaned_tags": [r["orphaned_tags"] for r in rows_],
                    "handoffs": [r["handoffs"] for r in rows_],
                    "fairness_jain": [r["fairness_jain"] for r in rows_],
                    "goodput_min_bps": [r["goodput_min_bps"] for r in rows_],
                    "goodput_median_bps": [r["goodput_median_bps"] for r in rows_],
                }
                for name, rows_ in out.items()
            },
        )
    return out
