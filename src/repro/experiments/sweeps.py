"""Crash-safe, resumable, shardable sweep engine layered on BatchRunner.

The paper's evaluation (§7: Fig 16/17/18, Tables 2-4) is reproduced by long
BER sweeps over (rate x distance x roll x yaw x ambient x SNR) grids.
:class:`~repro.experiments.batch.BatchRunner` executes such a grid bit-
deterministically, but in one shot: a crash at task 900/1000 loses
everything, one pathological operating point stalls the whole sweep, and a
single process owns the entire grid.  :class:`SweepRunner` adds the
durability layer a cluster-sized sweep needs:

* **Journaling.**  Every completed task is appended to a schema-versioned
  JSONL journal as soon as it finishes (flush + fsync), keyed by a blake2b
  content fingerprint of ``(GridTask, root_seed, index, code-version salt)``
  via :func:`repro.utils.opcache.fingerprint`.  A torn final line from a
  mid-write crash is tolerated on replay.
* **Resume.**  Re-running a sweep against an existing journal replays the
  completed records and executes only missing/stale tasks.  Because every
  attempt rebuilds its generator from the same index-derived
  :class:`~numpy.random.SeedSequence` child, and rows are canonicalised to
  JSON scalars before use, the aggregate rows of an interrupted-and-resumed
  sweep are bit-identical to an uninterrupted run.
* **Retry / timeout / quarantine.**  Task failures are classified through
  the :class:`~repro.errors.FailureReason` taxonomy: retryable failures
  (timeouts, transient stage errors) are retried with seeded exponential
  backoff; fatal ones (configuration/programming bugs) and retry-exhausted
  tasks land on a poison-task quarantine list recorded in the journal, and
  the sweep moves on.
* **Sharding.**  ``shard="i/n"`` gives a process a disjoint, index-derived
  slice of the grid (``index % n == i``).  Shard journals merge losslessly
  with :func:`merge_journals`; the merged rows are row-for-row identical to
  a single-process run.

Progress, ETA, retry and quarantine metrics flow through the ambient
:mod:`repro.obs` observer (``sweep.*`` series).  Metric collection never
touches task generators, so rows stay bit-identical with and without an
observer — the serial == pool == sharded guarantee PR 2 established.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import (
    ConfigError,
    DetectionError,
    EqualizationError,
    FailureReason,
    FailureStage,
    ReproError,
    TaskTimeoutError,
    TrainingError,
)
from repro.experiments.batch import BatchRunner, GridTask, _execute
from repro.obs import ensure_observer
from repro.utils.opcache import fingerprint

__all__ = [
    "CODE_SALT",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalState",
    "ShardSpec",
    "SimulatedCrash",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "backoff_delay",
    "canonical_records",
    "classify_exception",
    "current_attempt",
    "is_retryable",
    "journal_rows",
    "merge_journals",
    "read_journal",
    "run_grid",
    "task_fingerprint",
]

#: Journal record schema version; bump on any incompatible record change.
JOURNAL_SCHEMA_VERSION = 1

#: Code-version salt folded into every task fingerprint.  Bump whenever the
#: meaning of a task's result changes (task-body semantics, row schema, seed
#: derivation): journal entries written under the old salt then read as
#: stale and re-run instead of silently replaying wrong rows.
CODE_SALT = "retroturbo-sweep-v1"

#: Record fields that vary run-to-run without affecting results.  Stripped
#: by :func:`canonical_records`, so journal comparisons pin semantics only.
#: ``shard`` is provenance (which shard wrote the record), not semantics:
#: the same grid sharded differently must still compare canonically equal.
VOLATILE_FIELDS = frozenset({"ts", "elapsed_s", "shard"})

#: FailureReason codes that must never be retried (a deterministic bug or a
#: bad configuration reproduces identically on every attempt).
FATAL_CODES = frozenset({"config_error", "task_bug"})


class SweepError(ReproError):
    """Sweep-level contract violation (duplicate fingerprints, strict mode)."""


class JournalError(ReproError):
    """A journal file is unreadable or internally inconsistent."""


class SimulatedCrash(BaseException):
    """Fault-injection hook: raised by ``crash_after=`` to model a process
    dying between journal appends.

    Deliberately a ``BaseException`` so nothing in the engine (which only
    handles ``Exception``) can swallow it — exactly like a real SIGKILL,
    the journal is left as-is mid-sweep.
    """


# --------------------------------------------------------------------------
# Fingerprints and sharding


def task_fingerprint(
    task: GridTask, root_seed: int, index: int, salt: str = CODE_SALT
) -> str:
    """Content fingerprint identifying one task's result.

    Covers the task cell itself (scheme, x, every parameter — dataclass
    parameters like ModemConfig hash by field content), the sweep's root
    seed plus the cell index (which together determine the spawned child
    generator), and the code-version salt.  Any change to any of them
    yields a different fingerprint, so a journal can never replay a row
    for work that would compute differently today.
    """
    return fingerprint(salt, int(root_seed), int(index), task)


@dataclass(frozen=True)
class ShardSpec:
    """A deterministic ``index % count == index_of_this_shard`` grid slice."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1 or not 0 <= self.index < self.count:
            raise ValueError(f"need 0 <= index < count, got {self.index}/{self.count}")

    @classmethod
    def parse(cls, spec: "ShardSpec | str | tuple[int, int] | None") -> "ShardSpec | None":
        """Normalise ``"i/n"`` strings, ``(i, n)`` tuples, or pass through."""
        if spec is None or isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            try:
                i, n = spec.split("/")
                return cls(int(i), int(n))
            except (ValueError, TypeError):
                raise ValueError(f"shard spec must look like 'i/n', got {spec!r}") from None
        if isinstance(spec, tuple) and len(spec) == 2:
            return cls(int(spec[0]), int(spec[1]))
        raise TypeError(f"cannot interpret {spec!r} as a shard spec")

    def owns(self, task_index: int) -> bool:
        return task_index % self.count == self.index

    def indices(self, n_tasks: int) -> list[int]:
        """The task indices this shard owns, ascending."""
        return list(range(self.index, n_tasks, self.count))

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# --------------------------------------------------------------------------
# Failure classification, retry policy


def classify_exception(exc: BaseException) -> FailureReason:
    """Map a task exception onto the :class:`FailureReason` taxonomy.

    Stage-typed library errors keep their natural stage; everything the
    scheduler itself introduces (timeouts, worker loss, anonymous task
    exceptions) lands on :attr:`FailureStage.SCHEDULER`.
    """
    detail = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, TaskTimeoutError):
        return FailureReason(FailureStage.SCHEDULER, "timeout", str(exc))
    if isinstance(exc, ConfigError):
        return FailureReason(FailureStage.CONFIG, "config_error", detail)
    if isinstance(exc, DetectionError):
        return FailureReason(FailureStage.DETECTION, "detection_error", detail)
    if isinstance(exc, TrainingError):
        return FailureReason(FailureStage.TRAINING, "training_error", detail)
    if isinstance(exc, EqualizationError):
        return FailureReason(FailureStage.EQUALIZATION, "equalization_error", detail)
    if isinstance(exc, ReproError):
        return FailureReason(FailureStage.SCHEDULER, "task_exception", detail)
    if isinstance(exc, (ValueError, TypeError, KeyError, AttributeError, AssertionError)):
        # Deterministic programming/argument bugs: retrying reproduces them.
        return FailureReason(FailureStage.SCHEDULER, "task_bug", detail)
    return FailureReason(FailureStage.SCHEDULER, "task_exception", detail)


def is_retryable(reason: FailureReason) -> bool:
    """Whether a classified failure is worth another attempt."""
    return reason.code not in FATAL_CODES


def backoff_delay(
    fp: str, attempt: int, base_s: float, cap_s: float = 30.0
) -> float:
    """Seeded exponential backoff with +-50% jitter, deterministic per
    ``(task fingerprint, attempt)`` so reruns sleep identically."""
    if base_s <= 0.0:
        return 0.0
    seed = int.from_bytes(fingerprint(fp, attempt).encode()[:8], "big")
    jitter = 0.5 + np.random.default_rng(seed).random()
    return float(min(cap_s, base_s * 2.0 ** (attempt - 1)) * jitter)


_ATTEMPT: contextvars.ContextVar[int] = contextvars.ContextVar("sweep_attempt", default=0)


def current_attempt() -> int:
    """The 1-based attempt number of the task call in progress (0 outside
    a sweep).  Lets fault-injection task bodies behave per-attempt."""
    return _ATTEMPT.get()


def _attempt_execute(fn, task, seed_seq, collect, attempt):
    """One attempt: publish the attempt number, then the plain cell body."""
    token = _ATTEMPT.set(attempt)
    try:
        return _execute(fn, task, seed_seq, collect)
    finally:
        _ATTEMPT.reset(token)


def _call_with_timeout(fn, task, seed_seq, collect, attempt, timeout_s):
    """Run one attempt under a wall-clock budget.

    The body runs in a daemon thread; on timeout the thread is abandoned
    (Python cannot kill it) and :class:`TaskTimeoutError` is raised — the
    abandoned work cannot corrupt results because each attempt owns a fresh
    generator and returns (rather than mutates) its row.
    """
    box: dict[str, Any] = {}

    def body() -> None:
        try:
            box["ok"] = _attempt_execute(fn, task, seed_seq, collect, attempt)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            box["err"] = exc

    thread = threading.Thread(target=body, daemon=True, name="sweep-task")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise TaskTimeoutError(f"task exceeded timeout_s={timeout_s:g}")
    if "err" in box:
        raise box["err"]
    return box["ok"]


def _run_with_policy(
    fn,
    task: GridTask,
    seed_seq: np.random.SeedSequence,
    collect: bool,
    fp: str,
    timeout_s: float | None,
    max_retries: int,
    backoff_base_s: float,
    backoff_cap_s: float,
) -> tuple[str, Any, dict | None, int, float]:
    """Retry loop around one task (module-level: process pools pickle it).

    Returns ``("ok", row, metrics_snapshot, attempts, elapsed_s)`` or
    ``("failed", reason_dict, None, attempts, elapsed_s)``.  Every attempt
    rebuilds the generator from the same seed sequence, so a success on
    attempt k is bit-identical to a success on attempt 1.
    """
    start = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            if timeout_s is None:
                row, snap = _attempt_execute(fn, task, seed_seq, collect, attempt)
            else:
                row, snap = _call_with_timeout(fn, task, seed_seq, collect, attempt, timeout_s)
        except Exception as exc:  # noqa: BLE001 - classified below
            reason = classify_exception(exc)
            if not is_retryable(reason) or attempt > max_retries:
                reason_dict = {
                    "stage": reason.stage.value,
                    "code": reason.code,
                    "detail": reason.detail,
                }
                return "failed", reason_dict, None, attempt, time.perf_counter() - start
            delay = backoff_delay(fp, attempt, backoff_base_s, backoff_cap_s)
            if delay:
                time.sleep(delay)
            continue
        return "ok", _jsonify(row), snap, attempt, time.perf_counter() - start


# --------------------------------------------------------------------------
# Row canonicalisation (the bit-identity contract)


def _jsonify(value: Any) -> Any:
    """Canonicalise a result row to pure JSON scalars.

    Applied to every row *before* it is first used, so a freshly computed
    row and the same row replayed from the journal are indistinguishable —
    Python floats round-trip bit-exactly through JSON's repr encoding.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, np.generic):
        return _jsonify(value.item())
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    raise TypeError(
        f"sweep rows must be JSON-representable; cannot journal {type(value).__name__!r}"
    )


# --------------------------------------------------------------------------
# Journal I/O


@dataclass
class JournalState:
    """Replayed journal content, keyed by task fingerprint."""

    headers: list[dict] = field(default_factory=list)
    tasks: dict[str, dict] = field(default_factory=dict)
    quarantined: dict[str, dict] = field(default_factory=dict)
    truncated: bool = False
    n_records: int = 0


def _canonical_task_record(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def read_journal(path: str | os.PathLike) -> JournalState:
    """Replay a journal file into a :class:`JournalState`.

    A final line with no trailing newline or malformed JSON is treated as a
    torn in-flight write (the crash window) and ignored; malformed interior
    lines mean real corruption and raise :class:`JournalError`.  A task
    record supersedes any quarantine record for the same fingerprint, and
    duplicate task records must agree on their canonical content.
    """
    state = JournalState()
    raw = Path(path).read_bytes()
    if not raw:
        return state
    lines = raw.split(b"\n")
    incomplete_tail = lines.pop() if lines[-1] != b"" else None
    lines = [ln for ln in lines if ln]
    for lineno, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines) - 1 and incomplete_tail is None:
                state.truncated = True
                break
            raise JournalError(f"{path}: corrupt journal line {lineno + 1}: {exc}") from exc
        schema = record.get("schema")
        if schema is not None and schema > JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"{path}: journal schema {schema} is newer than supported "
                f"{JOURNAL_SCHEMA_VERSION}"
            )
        kind = record.get("kind")
        state.n_records += 1
        if kind == "header":
            state.headers.append(record)
        elif kind == "task":
            fp = record["fingerprint"]
            previous = state.tasks.get(fp)
            if previous is not None and _canonical_task_record(previous) != _canonical_task_record(record):
                raise JournalError(
                    f"{path}: fingerprint {fp} recorded twice with different rows"
                )
            state.tasks[fp] = record
            state.quarantined.pop(fp, None)
        elif kind == "quarantine":
            if record["fingerprint"] not in state.tasks:
                state.quarantined[record["fingerprint"]] = record
        else:
            raise JournalError(f"{path}: unknown record kind {kind!r}")
    if incomplete_tail is not None:
        state.truncated = True
    return state


def _append_record(fh, record: dict) -> None:
    """Durably append one record: single write, flush, fsync."""
    fh.write(json.dumps(record) + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def canonical_records(path_or_records) -> list[dict]:
    """Task/quarantine records in index order with volatile fields removed.

    The comparison form behind every journal-equivalence assertion: two
    journals are semantically identical iff their canonical records match,
    regardless of header count, session boundaries, completion order, or
    wall-clock fields.
    """
    if isinstance(path_or_records, (str, os.PathLike)):
        state = read_journal(path_or_records)
        records = list(state.tasks.values()) + list(state.quarantined.values())
    else:
        records = [r for r in path_or_records if r.get("kind") in ("task", "quarantine")]
    return sorted(
        (_canonical_task_record(r) for r in records), key=lambda r: (r["index"], r["kind"])
    )


def journal_rows(path: str | os.PathLike) -> list[dict]:
    """Completed result rows from a journal, in task-index order."""
    state = read_journal(path)
    records = sorted(state.tasks.values(), key=lambda r: r["index"])
    return [r["row"] for r in records]


def merge_journals(
    inputs: Iterable[str | os.PathLike], output: str | os.PathLike | None = None
) -> JournalState:
    """Losslessly merge shard journals; optionally write the merged file.

    Task records sharing a fingerprint must agree canonically (they were
    computed from identical inputs, so disagreement means a salt/version
    mismatch and raises).  The merged file carries every input header
    followed by task/quarantine records sorted by index — row-for-row
    comparable with a single-shard journal of the same sweep.

    Quarantine records carry their provenance (``shard``: which shard
    condemned the task, ``attempts``: after how many tries) through the
    merge verbatim; when several shards quarantined the same fingerprint
    the first input's record wins, provenance intact.  ``shard`` is a
    volatile field, so canonical comparison across shard layouts is
    unaffected.
    """
    merged = JournalState()
    for path in inputs:
        state = read_journal(path)
        merged.headers.extend(state.headers)
        merged.truncated |= state.truncated
        for fp, record in state.tasks.items():
            previous = merged.tasks.get(fp)
            if previous is not None and _canonical_task_record(previous) != _canonical_task_record(record):
                raise JournalError(
                    f"merge conflict: fingerprint {fp} has diverging rows across journals"
                )
            merged.tasks[fp] = record
            merged.quarantined.pop(fp, None)
        for fp, record in state.quarantined.items():
            if fp not in merged.tasks:
                merged.quarantined.setdefault(fp, record)
    merged.n_records = len(merged.tasks) + len(merged.quarantined) + len(merged.headers)
    if output is not None:
        body = sorted(
            list(merged.tasks.values()) + list(merged.quarantined.values()),
            key=lambda r: (r["index"], r["kind"]),
        )
        with open(output, "w") as fh:
            for record in merged.headers + body:
                fh.write(json.dumps(record) + "\n")
    return merged


# --------------------------------------------------------------------------
# The engine


@dataclass
class SweepResult:
    """Outcome of one :meth:`SweepRunner.run` session."""

    rows: list[dict]
    n_tasks: int
    executed: int
    replayed: int
    quarantined: list[dict]
    missing: list[int]
    journal_path: Path
    shard: ShardSpec | None

    @property
    def complete(self) -> bool:
        """Every task in the full grid has a journaled row."""
        return not self.missing and not self.quarantined


class SweepRunner:
    """Crash-safe sweep execution over a :class:`BatchRunner`-style grid.

    Parameters
    ----------
    fn:
        Module-level task callable ``fn(task, rng) -> Mapping`` (identical
        contract to :class:`BatchRunner`).
    journal:
        JSONL journal path.  If the file exists its completed records are
        replayed; only missing/stale tasks run.
    n_workers:
        1 (default) executes serially; larger fans pending tasks across a
        process pool.  Worker count never affects row content.
    root_seed:
        Seeds the SeedSequence whose index-derived children drive cells —
        the same derivation as :class:`BatchRunner`.
    observer:
        Optional :class:`repro.obs.Observer` for sweep metrics
        (``sweep.tasks_executed``, ``sweep.retries``, ``sweep.quarantined``,
        ``sweep.progress``, ``sweep.eta_s``).
    timeout_s / max_retries / backoff_base_s / backoff_cap_s:
        Per-task wall-clock budget and bounded retry with seeded
        exponential backoff.  Only retryable :class:`FailureReason` codes
        (see :func:`is_retryable`) are retried.
    shard:
        ``"i/n"`` (or :class:`ShardSpec`) restricting execution to the
        index-derived slice ``index % n == i``.  Replay still surfaces any
        journaled rows from other shards (e.g. from a merged journal).
    retry_quarantined:
        Re-attempt previously quarantined tasks instead of skipping them.
    strict:
        Raise :class:`SweepError` at the end of the session if any task in
        scope is quarantined.
    crash_after:
        Fault-injection hook: raise :class:`SimulatedCrash` after this many
        journal appends in this session (models dying between appends; used
        by the crash-safety drills and the nightly resume smoke).
    salt:
        Code-version salt folded into fingerprints (see :data:`CODE_SALT`).
    """

    def __init__(
        self,
        fn: Callable[[GridTask, np.random.Generator], Mapping[str, Any]],
        journal: str | os.PathLike,
        *,
        n_workers: int | None = 1,
        root_seed: int = 0,
        observer=None,
        timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.0,
        backoff_cap_s: float = 30.0,
        shard: ShardSpec | str | tuple[int, int] | None = None,
        retry_quarantined: bool = False,
        strict: bool = False,
        crash_after: int | None = None,
        salt: str = CODE_SALT,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        self.fn = fn
        self.journal_path = Path(journal)
        self.runner = BatchRunner(fn, n_workers=n_workers, root_seed=root_seed, observer=observer)
        self.root_seed = int(root_seed)
        self.n_workers = self.runner.n_workers
        self._obs = ensure_observer(observer)
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.shard = ShardSpec.parse(shard)
        self.retry_quarantined = retry_quarantined
        self.strict = strict
        self.crash_after = crash_after
        self.salt = salt

    # ------------------------------------------------------------------ run

    def fingerprints(self, tasks: Sequence[GridTask]) -> list[str]:
        """Per-cell fingerprints (must be unique across the grid)."""
        fps = [
            task_fingerprint(task, self.root_seed, i, self.salt)
            for i, task in enumerate(tasks)
        ]
        if len(set(fps)) != len(fps):
            raise SweepError(
                "duplicate task fingerprints: the grid contains identical "
                "(task, index) cells and cannot be journaled unambiguously"
            )
        return fps

    def run(self, tasks: Sequence[GridTask]) -> SweepResult:
        """Execute (or resume) the sweep; returns journaled rows in index order."""
        obs = self._obs
        tasks = list(tasks)
        n = len(tasks)
        fps = self.fingerprints(tasks)
        children = self.runner.child_seeds(n)
        state = (
            read_journal(self.journal_path) if self.journal_path.exists() else JournalState()
        )

        own = self.shard.indices(n) if self.shard is not None else list(range(n))
        skip = set(state.tasks)
        if not self.retry_quarantined:
            skip |= set(state.quarantined)
        pending = [i for i in own if fps[i] not in skip]
        replayed = sum(1 for fp in fps if fp in state.tasks)

        collect = obs.enabled
        new_records: dict[str, dict] = {}
        quarantine_new: dict[str, dict] = {}
        with obs.span(
            "sweep_run",
            n_tasks=n,
            n_pending=len(pending),
            n_workers=self.n_workers,
            shard=str(self.shard) if self.shard else "",
        ):
            if pending:
                with open(self.journal_path, "a") as fh:
                    _append_record(
                        fh,
                        {
                            "kind": "header",
                            "schema": JOURNAL_SCHEMA_VERSION,
                            "salt": self.salt,
                            "root_seed": self.root_seed,
                            "n_tasks": n,
                            "sweep": fingerprint(self.salt, self.root_seed, tasks),
                            "shard": str(self.shard) if self.shard else None,
                            "ts": time.time(),
                        },
                    )
                    self._execute_pending(
                        fh, tasks, fps, children, pending, collect, new_records, quarantine_new
                    )

        for fp, record in new_records.items():
            state.tasks[fp] = record
            state.quarantined.pop(fp, None)
        for fp, record in quarantine_new.items():
            state.quarantined[fp] = record

        completed = sorted(
            (state.tasks[fp] for fp in fps if fp in state.tasks), key=lambda r: r["index"]
        )
        rows = [r["row"] for r in completed]
        quarantined = sorted(
            (state.quarantined[fp] for fp in fps if fp in state.quarantined),
            key=lambda r: r["index"],
        )
        missing = [i for i in range(n) if fps[i] not in state.tasks]
        result = SweepResult(
            rows=rows,
            n_tasks=n,
            executed=len(new_records) + len(quarantine_new),
            replayed=replayed,
            quarantined=quarantined,
            missing=missing,
            journal_path=self.journal_path,
            shard=self.shard,
        )
        if collect:
            obs.count("sweep.tasks_replayed", replayed)
            obs.gauge("sweep.progress", (n - len(result.missing)) / n if n else 1.0)
        if self.strict and quarantined:
            worst = ", ".join(
                f"#{r['index']} {r['reason']['stage']}:{r['reason']['code']}"
                for r in quarantined[:5]
            )
            raise SweepError(
                f"{len(quarantined)} task(s) quarantined ({worst}); "
                f"journal: {self.journal_path}"
            )
        return result

    # ------------------------------------------------------------ internals

    def _execute_pending(
        self, fh, tasks, fps, children, pending, collect, new_records, quarantine_new
    ) -> None:
        obs = self._obs
        policy = (
            self.timeout_s,
            self.max_retries,
            self.backoff_base_s,
            self.backoff_cap_s,
        )
        appended = 0
        done = 0
        t0 = time.perf_counter()

        def record_outcome(i: int, outcome) -> None:
            nonlocal appended, done
            status, payload, snap, attempts, elapsed = outcome
            task = tasks[i]
            base = {
                "kind": "task" if status == "ok" else "quarantine",
                "schema": JOURNAL_SCHEMA_VERSION,
                "fingerprint": fps[i],
                "index": i,
                "scheme": task.scheme,
                "x": task.x,
                "attempts": attempts,
                "elapsed_s": elapsed,
            }
            if status == "ok":
                row = {
                    "scheme": task.scheme,
                    "x": task.x,
                    "index": i,
                    "root_seed": self.root_seed,
                }
                row.update(payload)
                base["row"] = row
                new_records[fps[i]] = base
                if snap is not None:
                    obs.metrics.merge_snapshot(snap)
            else:
                base["reason"] = payload
                # Provenance: which shard (and after how many attempts —
                # already in ``attempts``) condemned this task.  Volatile:
                # canonical comparisons ignore it, merge keeps it.
                base["shard"] = str(self.shard) if self.shard is not None else None
                quarantine_new[fps[i]] = base
                if collect:
                    obs.count("sweep.quarantined", stage=payload["stage"], code=payload["code"])
            if collect:
                if status == "ok":
                    obs.count("sweep.tasks_executed")
                if attempts > 1:
                    obs.count("sweep.retries", attempts - 1)
            _append_record(fh, base)
            appended += 1
            done += 1
            if collect:
                rate = (time.perf_counter() - t0) / done
                obs.gauge("sweep.eta_s", rate * (len(pending) - done))
            if self.crash_after is not None and appended >= self.crash_after:
                raise SimulatedCrash(
                    f"injected crash after {appended} journal append(s)"
                )

        if self.n_workers == 1:
            for i in pending:
                outcome = _run_with_policy(
                    self.fn, tasks[i], children[i], collect, fps[i], *policy
                )
                record_outcome(i, outcome)
        else:
            with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                futures = {
                    pool.submit(
                        _run_with_policy,
                        self.fn,
                        tasks[i],
                        children[i],
                        collect,
                        fps[i],
                        *policy,
                    ): i
                    for i in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        i = futures[future]
                        try:
                            outcome = future.result()
                        except Exception as exc:  # worker/pool loss, not task code
                            reason = {
                                "stage": FailureStage.SCHEDULER.value,
                                "code": "worker_crash",
                                "detail": f"{type(exc).__name__}: {exc}",
                            }
                            outcome = ("failed", reason, None, 1, 0.0)
                        record_outcome(i, outcome)


# --------------------------------------------------------------------------
# Harness front door


def run_grid(
    fn,
    tasks: Sequence[GridTask],
    *,
    n_workers: int | None = 1,
    root_seed: int = 0,
    observer=None,
    journal: str | os.PathLike | None = None,
    shard: ShardSpec | str | tuple[int, int] | None = None,
    **sweep_options: Any,
) -> list[dict]:
    """Execute a grid, durably when a journal is requested.

    The single entry point the figure harnesses call: without ``journal``
    this is exactly ``BatchRunner(...).run(tasks)``; with one, the tasks run
    under a :class:`SweepRunner` (resumable, shardable, retried) and the
    available journaled rows come back in index order.  Extra keyword
    options (``timeout_s``, ``max_retries``, ``strict``, ``crash_after``,
    ...) pass through to :class:`SweepRunner`.
    """
    if journal is None:
        if shard is not None or sweep_options:
            raise ValueError("shard/sweep options require a journal path")
        return BatchRunner(fn, n_workers=n_workers, root_seed=root_seed, observer=observer).run(
            list(tasks)
        )
    runner = SweepRunner(
        fn,
        journal,
        n_workers=n_workers,
        root_seed=root_seed,
        observer=observer,
        shard=shard,
        **sweep_options,
    )
    return runner.run(list(tasks)).rows
