"""Trajectory-study sweep: BER and goodput along the scenario catalog.

The trajectory analogue of the figure harnesses: a grid of
``scenario x n_packets`` cells, each a fresh catalog
:class:`~repro.api.ScenarioSpec` driven ``n_packets`` along its waypoint
path through :class:`~repro.experiments.mobility.MobileLinkSimulator`.
Every cell is a pure function of its grid index and the root seed (the
spec's own seed is the first draw from the cell's spawned generator), so
rows are bit-identical across worker counts, shards, and resumes —
the property the golden journal ``sweep_trajectory.jsonl`` pins.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.batch import GridTask, make_grid
from repro.experiments.common import format_table

__all__ = ["format_trajectory_report", "trajectory_study_grid", "trajectory_task"]


def trajectory_task(task: GridTask, rng: np.random.Generator) -> dict:
    """One grid cell: ``n_packets`` along one catalog scenario's path.

    Module-level (process pools pickle it).  The catalog spec's seed is
    replaced by the first draw from the cell's index-derived generator,
    and the same generator then feeds the packet payload/noise draws via
    :func:`repro.api.trajectory_summary` — so the row depends only on the
    cell's own seed, inheriting the engine's bit-identity guarantee.
    """
    from repro.api import named_scenario, trajectory_summary

    kwargs = task.kwargs
    scenario = kwargs["scenario"]
    spec = named_scenario(scenario).replace(seed=int(rng.integers(2**63)))
    sim = spec.build()
    row = trajectory_summary(sim, int(kwargs["n_packets"]), rng)
    row["scenario"] = scenario
    return row


def trajectory_study_grid(
    scenarios: list[str] | None = None,
    n_packets_list: list[int] | None = None,
    n_workers: int | None = 1,
    root_seed: int = 51,
    observer=None,
    metrics_out=None,
    journal=None,
    shard=None,
    sweep: dict | None = None,
) -> dict[str, list[dict]]:
    """BER/goodput matrix: ``scenario x n_packets`` through the engine.

    Returns rows grouped by scenario, each the
    :func:`~repro.api.trajectory_summary` record plus grid coordinates.
    ``journal``/``shard``/``sweep`` select the crash-safe resumable
    engine — see :func:`repro.experiments.sweeps.run_grid`.
    """
    from repro.api import scenario_catalog_names
    from repro.experiments.common import emit_sweep_report
    from repro.experiments.sweeps import run_grid
    from repro.obs import Observer

    if observer is None and metrics_out is not None:
        observer = Observer()

    names = scenarios or scenario_catalog_names()
    known = set(scenario_catalog_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown}; known: {sorted(known)}")
    xs = n_packets_list or [4, 8, 16]
    schemes = {name: {"scenario": name} for name in names}
    tasks = make_grid(schemes, xs, x_key="n_packets")
    rows = run_grid(
        trajectory_task,
        tasks,
        n_workers=n_workers,
        root_seed=root_seed,
        observer=observer,
        journal=journal,
        shard=shard,
        **(sweep or {}),
    )
    out: dict[str, list[dict]] = {name: [] for name in names}
    for row in rows:
        out[row["scheme"]].append(row)
    if observer is not None:
        emit_sweep_report(
            observer,
            metrics_out,
            scenario={
                "figure": "trajectory_study",
                "scenarios": names,
                "n_packets": xs,
            },
            summary={
                name: {
                    "ber": [r["ber"] for r in rows_],
                    "goodput_bps": [r["goodput_bps"] for r in rows_],
                    "crc_ok_rate": [r["crc_ok_rate"] for r in rows_],
                }
                for name, rows_ in out.items()
            },
        )
    return out


def format_trajectory_report(out: dict[str, list[dict]]) -> str:
    """The BER/goodput-vs-trajectory report as a plain-text table."""
    rows = [
        (
            name,
            row["n_packets"],
            row["ber"],
            row["crc_ok_rate"],
            row["goodput_bps"],
            row["sim_time_s"],
        )
        for name, rows_ in sorted(out.items())
        for row in sorted(rows_, key=lambda r: r["n_packets"])
    ]
    return format_table(
        ["scenario", "n_packets", "ber", "crc_ok_rate", "goodput_bps", "sim_time_s"],
        rows,
        title="BER / goodput vs trajectory",
    )
