"""Deterministic demo/fault-injection task bodies for the sweep engine.

These module-level callables (process pools must pickle them) stand in for
the physics harnesses wherever a sweep's *scheduling* behaviour is the
thing under test: the crash-safety drills in ``tests/experiments``, the
frozen fault-plan journal in ``tests/golden``, and the nightly kill-and-
resume CI smoke.  They are cheap, seed-deterministic, and — via
:func:`repro.experiments.sweeps.current_attempt` — able to fail on demand
per attempt, which is how retry/timeout/quarantine paths are exercised
without nondeterministic infrastructure faults.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError, DetectionError
from repro.experiments.sweeps import current_attempt

__all__ = ["demo_task", "flaky_demo_task"]


def demo_task(task, rng: np.random.Generator) -> dict:
    """A cheap, fully deterministic stand-in for a BER cell.

    The "measurement" depends only on the cell's parameters and its spawned
    generator, like a real packet cell; ``ber`` decays with ``x`` so sweep
    outputs remain shaped like the figures they stand in for.
    """
    gain = float(task.kwargs.get("gain", 1.0))
    noise = float(rng.random())
    return {
        "ber": float(np.exp(-task.x * gain) * (0.5 + 0.5 * noise)),
        "draw": int(rng.integers(0, 1_000_000)),
        "gain": gain,
    }


def flaky_demo_task(task, rng: np.random.Generator) -> dict:
    """:func:`demo_task` plus parameter-driven fault injection.

    Recognised cell parameters:

    ``sleep_s``
        Sleep before doing anything (drives the per-task timeout path).
    ``fatal``
        Raise :class:`ConfigError` — classified fatal, quarantined with no
        retry.
    ``fail_attempts``
        Raise :class:`DetectionError` (classified retryable) while the
        current attempt number is <= this value: ``fail_attempts=1`` means
        "fail once, succeed on the first retry"; a large value exhausts the
        retry budget and lands in quarantine.

    All failures fire *before* the generator is touched, so a retried
    success is bit-identical to a first-try success.
    """
    kwargs = task.kwargs
    sleep_s = float(kwargs.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    if kwargs.get("fatal"):
        raise ConfigError(f"injected fatal failure at {task.scheme}/{task.x:g}")
    fail_attempts = int(kwargs.get("fail_attempts", 0))
    if current_attempt() <= fail_attempts:
        raise DetectionError(
            f"injected transient failure (attempt {current_attempt()}/{fail_attempts})"
        )
    return demo_task(task, rng)
