"""Mobility-support study: channel drift versus mid-packet re-sync.

Implements the evaluation for the paper's §8 proposal: under a rolling /
range-changing tag, a single head-of-packet channel estimate goes stale
before the packet ends; sync sections + block-wise corrector re-fitting
(:mod:`repro.phy.resync`) restore reliability up to much higher mobility
levels.
"""

from __future__ import annotations

import numpy as np

from repro.channel.dynamics import ChannelDrift
from repro.channel.link import OpticalLink
from repro.channel.trajectory import Trajectory
from repro.experiments.common import SweepPoint
from repro.lcm.array import LCMArray
from repro.lcm.heterogeneity import HeterogeneityModel
from repro.modem.config import ModemConfig
from repro.modem.dsm_pqam import DsmPqamModulator
from repro.obs import ensure_observer
from repro.optics.geometry import LinkGeometry
from repro.phy.resync import MobileReceiver, ResyncFrameFormat
from repro.phy.transmitter import PhyTransmitter
from repro.training.offline import OfflineTrainer
from repro.utils.bits import bit_errors, bytes_to_bits
from repro.utils.deprecation import warn_once
from repro.utils.rng import ensure_rng

__all__ = ["MobileLinkSimulator", "mobility_resync_sweep"]


class MobileLinkSimulator:
    """Tag + drifting link + block-resync reader (the §8 proposal)."""

    def __init__(
        self,
        config: ModemConfig | None = None,
        distance_m: float = 3.0,
        drift: ChannelDrift | None = None,
        payload_bytes: int = 48,
        sync_interval_slots: int = 64,
        resync: bool = True,
        heterogeneity: HeterogeneityModel | None = None,
        n_bases: int = 2,
        k_branches: int = 16,
        trajectory: Trajectory | None = None,
        packet_interval_s: float = 0.0,
        rng=None,
        observer=None,
    ):
        if trajectory is not None and drift is not None:
            raise ValueError("pass either drift= or trajectory=, not both")
        if packet_interval_s < 0:
            raise ValueError(f"packet_interval_s must be >= 0, got {packet_interval_s}")
        gen = ensure_rng(rng)
        self._obs = ensure_observer(observer)
        self.config = config or ModemConfig()
        self.trajectory = trajectory
        self.packet_interval_s = float(packet_interval_s)
        self.t_s = 0.0
        if trajectory is not None:
            geometry = trajectory.pose(0.0)
            link_drift: ChannelDrift | object = trajectory.window_drift(0.0)
        else:
            geometry = LinkGeometry(distance_m=distance_m)
            link_drift = drift or ChannelDrift()
        self.link = OpticalLink(geometry=geometry, drift=link_drift)
        het = heterogeneity if heterogeneity is not None else HeterogeneityModel()
        self.array = LCMArray.build(
            self.config.dsm_order,
            self.config.levels_per_axis,
            heterogeneity=het,
            rng=gen,
        )
        self.frame = ResyncFrameFormat(
            self.config,
            payload_bytes=payload_bytes,
            sync_interval_slots=sync_interval_slots,
        )
        self.transmitter = PhyTransmitter(self.frame, self.array)
        offline = OfflineTrainer(self.config)
        tables = offline.collect_condition_tables()
        bases, _ = offline.extract_bases(tables, n_bases=n_bases)
        self.receiver = MobileReceiver(
            self.frame, basis_tables=bases, k_branches=k_branches, resync=resync
        )
        nominal = LCMArray.build(self.config.dsm_order, self.config.levels_per_axis)
        self.frame.preamble.record_reference(DsmPqamModulator(self.config, nominal))

    def run_packet(self, payload: bytes | None = None, rng=None) -> tuple[float, bool]:
        """One packet; returns (BER, crc_ok).

        .. deprecated:: use ``repro.api.Session(ScenarioSpec(kind="mobility",
           ...)).run()`` as the public entry point.
        """
        warn_once(
            "MobileLinkSimulator.run_packet",
            "MobileLinkSimulator.run_packet is deprecated as a public entry point; "
            "use repro.api.Session(ScenarioSpec(kind='mobility', ...)).run() instead",
        )
        return self._run_packet(payload=payload, rng=rng)

    def _run_packet(self, payload: bytes | None = None, rng=None) -> tuple[float, bool]:
        obs = self._obs
        gen = ensure_rng(rng)
        if payload is None:
            payload = gen.integers(0, 256, self.frame.payload_bytes, dtype=np.uint8).tobytes()
        with obs.span("packet", harness="mobility") as span:
            if self.trajectory is not None:
                pose = self.trajectory.pose(self.t_s)
                self.link.geometry = pose
                self.link.drift = self.trajectory.window_drift(self.t_s)
                if obs.enabled:
                    obs.gauge("trajectory.time_s", self.t_s)
                    obs.gauge("trajectory.distance_m", pose.distance_m)
                    obs.gauge("trajectory.gain", float(self.trajectory.gain(self.t_s)[0]))
                    obs.count("trajectory.packets_total", in_fov="yes" if pose.in_fov else "no")
            with obs.span("transmit"):
                u = self.transmitter.transmit(payload)
            ts = self.config.samples_per_slot
            tail = np.full(2 * ts, u[-1], dtype=complex)
            with obs.span("channel"):
                out = self.link.transmit(np.concatenate([u, tail]), self.config.fs, gen)
            if self.trajectory is not None:
                self.t_s += (u.size + tail.size) / self.config.fs + self.packet_interval_s
            with obs.span("receive"):
                rx, _ = self.receiver.receive(
                    out.samples, search_stop=(self.frame.guard_slots + 2) * ts
                )
            sent = bytes_to_bits(payload)
            got = bytes_to_bits(rx.payload.ljust(len(payload), b"\0")[: len(payload)])
            ber = bit_errors(sent, got) / sent.size
            if obs.enabled:
                obs.count("phy.packets_total", crc="ok" if rx.crc_ok else "fail")
                obs.count("phy.bits_total", sent.size)
                obs.observe("phy.packet_ber", ber)
                span.annotate(crc_ok=rx.crc_ok, ber=ber)
        return ber, rx.crc_ok

    def measure_ber(self, n_packets: int = 4, rng=None) -> float:
        """Mean BER over packets."""
        gen = ensure_rng(rng)
        return float(np.mean([self._run_packet(rng=gen)[0] for _ in range(n_packets)]))


def mobility_resync_sweep(
    roll_rates_deg_s: list[float] | None = None,
    distance_m: float = 3.0,
    n_packets: int = 3,
    payload_bytes: int = 48,
    sync_interval_slots: int = 32,
    rng=61,
) -> dict[str, list[SweepPoint]]:
    """BER vs roll drift rate, with and without mid-packet re-sync."""
    roll_rates_deg_s = roll_rates_deg_s or [0.0, 10.0, 20.0, 40.0]
    gen = ensure_rng(rng)
    out: dict[str, list[SweepPoint]] = {"resync": [], "static_estimate": []}
    for rate in roll_rates_deg_s:
        drift = ChannelDrift(roll_rate_rad_s=float(np.deg2rad(rate)))
        for label, resync in (("resync", True), ("static_estimate", False)):
            sim = MobileLinkSimulator(
                distance_m=distance_m,
                drift=drift,
                payload_bytes=payload_bytes,
                sync_interval_slots=sync_interval_slots,
                resync=resync,
                rng=7,
            )
            ber = sim.measure_ber(n_packets=n_packets, rng=gen)
            out[label].append(SweepPoint(x=rate, ber=ber))
    return out
