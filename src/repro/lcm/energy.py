"""Battery-free operation feasibility (paper §7.2.2, Power).

"The sub-mW property potentially facilitates battery-free operation with
solar panel."  This module checks that claim quantitatively: an indoor
photovoltaic harvest model (µW per cm² per lux, amorphous-Si indoor
panels), a storage capacitor, and a duty-cycled tag schedule — answering
*how large a panel* and *what duty cycle* sustain RetroTurbo under the
paper's own illumination presets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optics.ambient import AmbientLight

__all__ = ["EnergyBudget", "SolarHarvester", "StorageCapacitor"]


@dataclass(frozen=True)
class SolarHarvester:
    """Indoor photovoltaic panel.

    ``efficiency_uw_per_cm2_lux`` defaults to 0.35 µW/(cm²·lux) — typical
    for amorphous-silicon cells under fluorescent/LED office light.
    """

    area_cm2: float = 8.0
    efficiency_uw_per_cm2_lux: float = 0.35

    def __post_init__(self) -> None:
        if self.area_cm2 <= 0:
            raise ValueError("panel area must be positive")
        if self.efficiency_uw_per_cm2_lux <= 0:
            raise ValueError("efficiency must be positive")

    def harvest_w(self, ambient: AmbientLight) -> float:
        """Harvested power in watts under an illumination condition."""
        return self.area_cm2 * self.efficiency_uw_per_cm2_lux * ambient.lux * 1e-6


@dataclass
class StorageCapacitor:
    """Energy buffer between the harvester and the tag."""

    capacitance_f: float = 0.1
    voltage_max: float = 3.3
    voltage_min: float = 1.8
    voltage: float = 3.3

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if not 0 < self.voltage_min < self.voltage_max:
            raise ValueError("need 0 < voltage_min < voltage_max")
        self.voltage = min(self.voltage, self.voltage_max)

    @property
    def usable_energy_j(self) -> float:
        """Energy available above the brown-out threshold."""
        v = max(self.voltage, self.voltage_min)
        return 0.5 * self.capacitance_f * (v**2 - self.voltage_min**2)

    @property
    def capacity_j(self) -> float:
        """Usable energy when fully charged."""
        return 0.5 * self.capacitance_f * (self.voltage_max**2 - self.voltage_min**2)

    def apply(self, net_power_w: float, duration_s: float) -> bool:
        """Integrate a net power over a duration; returns False on brown-out."""
        energy = self.usable_energy_j + net_power_w * duration_s
        energy = min(energy, self.capacity_j)
        if energy < 0:
            self.voltage = self.voltage_min
            return False
        self.voltage = float(np.sqrt(2 * energy / self.capacitance_f + self.voltage_min**2))
        return True


@dataclass(frozen=True)
class EnergyBudget:
    """Steady-state duty-cycle analysis for a harvesting tag."""

    harvester: SolarHarvester
    tx_power_w: float = 0.8e-3
    """Active transmit power (the paper's measured 0.8 mW)."""
    sleep_power_w: float = 5e-6
    """Deep-sleep draw between packets."""

    def max_duty_cycle(self, ambient: AmbientLight) -> float:
        """Largest sustainable fraction of time spent transmitting."""
        harvest = self.harvester.harvest_w(ambient)
        if harvest <= self.sleep_power_w:
            return 0.0
        duty = (harvest - self.sleep_power_w) / (self.tx_power_w - self.sleep_power_w)
        return float(min(duty, 1.0))

    def sustainable(self, ambient: AmbientLight, duty_cycle: float) -> bool:
        """Whether a given duty cycle is energy-neutral under ``ambient``."""
        if not 0 <= duty_cycle <= 1:
            raise ValueError("duty cycle must be in [0, 1]")
        return duty_cycle <= self.max_duty_cycle(ambient)

    def packets_per_hour(self, ambient: AmbientLight, packet_airtime_s: float) -> float:
        """Sustainable packet rate for a given packet airtime."""
        if packet_airtime_s <= 0:
            raise ValueError("packet airtime must be positive")
        return self.max_duty_cycle(ambient) * 3600.0 / packet_airtime_s

    def simulate(
        self,
        ambient: AmbientLight,
        capacitor: StorageCapacitor,
        packet_airtime_s: float,
        interval_s: float,
        duration_s: float,
    ) -> bool:
        """Step a packet schedule through the capacitor; True if no brown-out."""
        harvest = self.harvester.harvest_w(ambient)
        t = 0.0
        while t < duration_s:
            if not capacitor.apply(harvest - self.tx_power_w, packet_airtime_s):
                return False
            idle = max(interval_s - packet_airtime_s, 0.0)
            capacitor.apply(harvest - self.sleep_power_w, idle)
            t += max(interval_s, packet_airtime_s)
        return True
