"""Per-pixel manufacturing and illumination spread.

Paper §4.3.3 / Fig 11b: across multiple LCMs the pulses vary in amplitude
"possibly due to manufacturing error between LCMs, uneven illumination from
different angle and distance, and angular errors of LCM's polarizer
attachment".  This module samples those imperfections so the channel-training
machinery has something real to correct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["HeterogeneityModel", "PixelVariation"]


@dataclass(frozen=True)
class PixelVariation:
    """Sampled imperfections for one pixel."""

    gain: float
    angle_error_rad: float
    time_scale: float
    retardance_scale: float = 1.0


@dataclass(frozen=True)
class HeterogeneityModel:
    """Statistical model of pixel-to-pixel spread.

    Parameters
    ----------
    gain_sigma:
        Std-dev of per-pixel log-amplitude spread.  Pixels on one LCM come
        from the same manufacturing run and see nearly the same
        illumination, so the per-pixel term is small; the LCM-level term
        below carries the bulk of Fig 11b's +-10-20% spread (and is exactly
        what online channel training corrects).
    lcm_gain_sigma:
        Log-amplitude spread shared by all pixels of one physical LCM.
    angle_sigma_rad:
        Std-dev of polarizer attachment error.
    speed_sigma:
        Std-dev of log response-speed spread (time-constant dilation).
    retardance_sigma:
        Std-dev of log cell-gap retardance spread (``delta_n * d``
        manufacturing variation).  Defaults to 0.0 — and, critically, a
        zero sigma draws *nothing* from the generator, so every seeded
        build predating the dispersion layer replays its exact RNG stream
        (the golden walls depend on this).
    """

    gain_sigma: float = 0.03
    lcm_gain_sigma: float = 0.10
    angle_sigma_rad: float = np.deg2rad(1.5)
    speed_sigma: float = 0.04
    retardance_sigma: float = 0.0

    def sample_lcm_gain(self, rng: np.random.Generator | int | None = None) -> float:
        """Shared gain factor for one physical LCM."""
        gen = ensure_rng(rng)
        return float(np.exp(gen.normal(0.0, self.lcm_gain_sigma)))

    def sample_pixel(
        self,
        rng: np.random.Generator | int | None = None,
        lcm_gain: float = 1.0,
    ) -> PixelVariation:
        """Sample one pixel's imperfections (optionally on a given LCM)."""
        gen = ensure_rng(rng)
        gain = lcm_gain * float(np.exp(gen.normal(0.0, self.gain_sigma)))
        angle_err = float(gen.normal(0.0, self.angle_sigma_rad))
        speed = float(np.exp(gen.normal(0.0, self.speed_sigma)))
        # Drawn only when enabled, after the three legacy draws: default
        # models consume an unchanged RNG stream (seeded-build stability).
        if self.retardance_sigma != 0.0:
            retardance = float(np.exp(gen.normal(0.0, self.retardance_sigma)))
        else:
            retardance = 1.0
        return PixelVariation(
            gain=gain,
            angle_error_rad=angle_err,
            time_scale=speed,
            retardance_scale=retardance,
        )

    @classmethod
    def ideal(cls) -> "HeterogeneityModel":
        """A model with zero spread (for controlled experiments)."""
        return cls(gain_sigma=0.0, lcm_gain_sigma=0.0, angle_sigma_rad=0.0, speed_sigma=0.0)
