"""Wavelength and temperature dependence of the LC cell's retardation.

The scalar Malus model in :mod:`repro.optics.polarization` treats a pixel at
alignment ``phi`` as an ideal mixture ``m(phi) = sin^2(phi * pi / 2)`` of
light at the back-polarizer angle and at +90deg.  Physically that mixture
fraction is set by the cell's optical retardation

.. math::
    \\Gamma(\\lambda) = 2 \\pi \\, \\Delta n(\\lambda) \\, d / \\lambda

which is *not* constant: the birefringence ``delta_n`` disperses with
wavelength (Cauchy-style ``A + B/lambda^2 + C/lambda^4``), shrinks with
temperature, and varies pixel to pixel with cell-gap manufacturing spread.
A cell tuned to a half wave at its design wavelength under-rotates red and
over-rotates blue — the dominant imperfection of real LC retromodulator
links under LED illumination.

This module hosts that physics:

* :class:`CauchyDispersion` — ``delta_n(lambda)``;
* :class:`LCDispersionModel` — the normalised retardation ratio
  ``Gamma(lambda) / Gamma(lambda_design)``, temperature drift of both the
  retardance and the LC time constants (threaded into
  :class:`~repro.lcm.response.LCParams` via :meth:`scaled_params`), and the
  wavelength-resolved mixture fraction :meth:`mixture_fraction`.

Degenerate-limit contract (the equivalence wall's anchor)
---------------------------------------------------------
:meth:`mixture_fraction` is written in *anchored-correction* form::

    m_lambda(phi) = sin^2(phi * pi/2)                       # the frozen core
                  + cos^2(ratio * g) - cos^2(g)             # the physics
    with g = (1 - phi) * pi/2

Because ``sin^2(phi*pi/2) == cos^2((1-phi)*pi/2)`` *mathematically*, the sum
equals the textbook ``cos^2(Gamma(lambda) (1-phi) / 2)`` (retardance
normalised to ``pi * ratio``) up to one ulp — while at ``ratio == 1.0`` the
correction is computed as ``y - y == +0.0`` and the result is **bitwise**
the scalar model's ``transmit_fraction``.  ``ratio`` itself evaluates to
exactly ``1.0`` at the design wavelength and nominal temperature (it is a
product of ``x / x`` terms), so the degenerate collapse needs no dispatch
branch: the full kernel runs and reproduces the frozen IEEE sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.lcm.response import LCParams
from repro.utils.backend import active_backend

__all__ = ["CauchyDispersion", "LCDispersionModel"]


@dataclass(frozen=True)
class CauchyDispersion:
    """Cauchy birefringence model ``delta_n(lambda) = A + B/l^2 + C/l^4``
    with ``l`` in micrometres.

    Defaults approximate a 5CB-class nematic (``delta_n ~ 0.19`` at 550 nm,
    rising toward the blue).  ``zero()`` gives the dispersion-free material
    used by the degenerate-limit tests.
    """

    a: float = 0.18
    b_um2: float = 0.0045
    c_um4: float = 0.0

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError("Cauchy A coefficient must be positive")

    def delta_n(self, wavelength_nm: float) -> float:
        """Birefringence at ``wavelength_nm``."""
        if wavelength_nm <= 0:
            raise ValueError("wavelength must be positive")
        lam2 = (wavelength_nm / 1000.0) ** 2
        return self.a + self.b_um2 / lam2 + self.c_um4 / (lam2 * lam2)

    @classmethod
    def zero(cls, a: float = 0.18) -> "CauchyDispersion":
        """A dispersion-free birefringence (``delta_n`` constant in lambda)."""
        return cls(a=a, b_um2=0.0, c_um4=0.0)


@dataclass(frozen=True)
class LCDispersionModel:
    """Retardation of one LC cell versus wavelength and temperature.

    Parameters
    ----------
    dispersion:
        The material's :class:`CauchyDispersion`.
    thickness_um:
        Cell gap ``d`` (only enters the *absolute* retardation
        :meth:`retardation_rad`; the propagation kernels use the
        design-normalised ratio, which cancels ``d``).
    design_wavelength_nm:
        The wavelength the cell is tuned to (half-wave at full relaxation);
        the scalar Malus model is exact there.
    temperature_c / reference_temperature_c:
        Operating and calibration temperatures.  Away from the reference
        the birefringence shrinks (``retardance_drift_per_c`` per degree)
        and the LC's viscosity-set time constants stretch exponentially
        (``tau_drift_per_c`` per degree of *cooling*) — the tau0/tau1 drift
        threaded into :class:`~repro.lcm.response.LCParams` by
        :meth:`scaled_params`.
    """

    dispersion: CauchyDispersion = field(default_factory=CauchyDispersion)
    thickness_um: float = 5.0
    design_wavelength_nm: float = 550.0
    temperature_c: float = 25.0
    reference_temperature_c: float = 25.0
    tau_drift_per_c: float = 0.04
    retardance_drift_per_c: float = 0.0022

    def __post_init__(self) -> None:
        if self.thickness_um <= 0:
            raise ValueError("cell thickness must be positive")
        if self.design_wavelength_nm <= 0:
            raise ValueError("design wavelength must be positive")
        if self.retardance_temperature_scale() <= 0:
            raise ValueError(
                "temperature drift would drive the retardance non-positive"
            )

    # ------------------------------------------------------- thermal drift

    def tau_scale(self) -> float:
        """Multiplier on every LC time constant at the operating temperature.

        ``exp(-tau_drift_per_c * (T - T_ref))``: cooling raises the
        rotational viscosity and slows both charge (tau1) and relaxation
        (tau0); at the reference temperature the factor is exactly ``1.0``.
        """
        return math.exp(-self.tau_drift_per_c * (self.temperature_c - self.reference_temperature_c))

    def scaled_params(self, base: LCParams) -> LCParams:
        """``base`` with the thermal tau drift applied.

        Returns ``base`` itself at the reference temperature, so the
        degenerate configuration shares the exact parameter object (and
        content fingerprint) of the scalar path.
        """
        scale = self.tau_scale()
        if scale == 1.0:
            return base
        return base.scaled(scale)

    def retardance_temperature_scale(self) -> float:
        """Multiplier on ``delta_n * d`` at the operating temperature
        (exactly ``1.0`` at the reference temperature)."""
        return 1.0 - self.retardance_drift_per_c * (
            self.temperature_c - self.reference_temperature_c
        )

    # ------------------------------------------------------- retardation

    def retardation_rad(self, wavelength_nm: float) -> float:
        """Absolute retardation ``Gamma(lambda) = 2 pi delta_n(lambda) d / lambda``."""
        return (
            2.0
            * math.pi
            * self.dispersion.delta_n(wavelength_nm)
            * self.retardance_temperature_scale()
            * (self.thickness_um * 1000.0)
            / wavelength_nm
        )

    def retardation_ratio(self, wavelength_nm: float) -> float:
        """``Gamma(lambda) / Gamma(lambda_design)`` at nominal temperature
        calibration, times the thermal retardance drift.

        At the design wavelength and reference temperature every factor is
        an exact ``x / x`` (or ``1.0 - 0.0``) and the ratio is bitwise
        ``1.0`` — the anchor of the degenerate-limit contract.
        """
        n_ratio = self.dispersion.delta_n(wavelength_nm) / self.dispersion.delta_n(
            self.design_wavelength_nm
        )
        return (
            n_ratio
            * (self.design_wavelength_nm / wavelength_nm)
            * self.retardance_temperature_scale()
        )

    # ------------------------------------------------- mixture nonlinearity

    def mixture_fraction(self, phi, wavelength_nm: float, retardance_scale=None):
        """Wavelength-resolved Malus mixture fraction ``m_lambda(phi)``.

        Anchored-correction form (see module docstring): bitwise equal to
        :meth:`repro.lcm.response.LCResponseModel.transmit_fraction` when
        the total retardation ratio is exactly ``1.0``, and equal (to one
        ulp) to ``cos^2(pi * ratio * (1 - phi) / 2)`` otherwise.

        ``retardance_scale`` optionally multiplies the ratio per pixel
        (shape ``(n_pixels, 1)`` against ``phi`` of shape
        ``(n_pixels, n_samples)``) — the per-pixel cell-gap heterogeneity
        drawn by :class:`repro.lcm.heterogeneity.HeterogeneityModel`.
        """
        xp = active_backend().xp
        phi = xp.asarray(phi)
        core = xp.sin(phi * (xp.pi / 2.0)) ** 2
        ratio = self.retardation_ratio(wavelength_nm)
        if retardance_scale is not None:
            ratio = ratio * retardance_scale
        relax = (1.0 - phi) * (xp.pi / 2.0)
        corr = xp.cos(ratio * relax) ** 2 - xp.cos(relax) ** 2
        return xp.clip(core + corr, 0.0, 1.0)
