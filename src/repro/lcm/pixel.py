"""A single LCM pixel: geometry, polarization basis and imperfections."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lcm.response import LCParams

__all__ = ["LCMPixel"]


@dataclass
class LCMPixel:
    """One independently drivable liquid-crystal pixel.

    Parameters
    ----------
    area:
        Relative optical area (the paper's binary-weighted groups use
        8:4:2:1).  Received amplitude scales linearly with area.
    angle_rad:
        Back-polarizer angle in radians (0 for I-LCMs, pi/4 for Q-LCMs in
        the paper's tag).  Includes any per-pixel attachment error.
    gain:
        Multiplicative amplitude imperfection covering manufacturing spread
        and uneven illumination (paper Fig 11b); 1.0 is nominal.
    time_scale:
        Response-speed dilation; all LC time constants of this pixel are
        effectively multiplied by this factor.
    params:
        Shared physical constants (see :class:`repro.lcm.response.LCParams`).
    retardance_scale:
        Cell-gap manufacturing factor on this pixel's optical retardation
        (``delta_n * d`` spread); 1.0 is the design gap.  Only consulted by
        the Jones/Stokes fidelity rungs — the scalar Malus path is
        retardation-blind by construction.
    """

    area: float
    angle_rad: float = 0.0
    gain: float = 1.0
    time_scale: float = 1.0
    params: LCParams = field(default_factory=LCParams)
    retardance_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError("pixel area must be positive")
        if self.gain <= 0:
            raise ValueError("pixel gain must be positive")
        if self.time_scale <= 0:
            raise ValueError("pixel time_scale must be positive")
        if self.retardance_scale <= 0:
            raise ValueError("pixel retardance_scale must be positive")

    @property
    def basis(self) -> complex:
        """Complex polarization basis vector ``exp(j * 2 * angle)``.

        A physical polarizer angle theta maps to ``2*theta`` in the
        constellation plane (Malus-law ``cos 2(theta_t - theta_r)``
        factorisation, paper §4.2.1).
        """
        return complex(np.exp(2j * self.angle_rad))

    @property
    def amplitude(self) -> float:
        """Peak contribution to the received waveform: ``area * gain``."""
        return self.area * self.gain
