"""Liquid-crystal modulator (LCM) substrate.

This package is the reproduction's stand-in for the paper's customised COTS
LCD shutters (front polarizer detached).  It provides:

* :mod:`repro.lcm.response` — a viscoelastic two-state ODE model of the LC
  director with *closed-form* segment integration: fast charging, a
  stress-gated discharge plateau (~1 ms) followed by slow relaxation
  (paper Fig 3), and bit-history memory (tail effect, paper Fig 11a).
* :mod:`repro.lcm.pixel` / :mod:`repro.lcm.array` — pixels with area,
  polarizer angle and gain; the paper's tag layout of 4 LCMs x 4
  binary-weighted pixel groups (8:4:2:1) split into 0deg I-LCMs and
  45deg Q-LCMs.
* :mod:`repro.lcm.heterogeneity` — per-pixel manufacturing/illumination
  spread (paper Fig 11b).
* :mod:`repro.lcm.fingerprint` — MLS-driven reference collection and the
  finite-memory fingerprint emulator of paper §5.2.
* :mod:`repro.lcm.power` — the analytic tag power model reproducing the
  0.8 mW / rate-independence microbenchmark (§7.2.2).
"""

from repro.lcm.array import FIDELITY_RUNGS, LCMArray, LCMGroup, build_paper_tag_array
from repro.lcm.dispersion import CauchyDispersion, LCDispersionModel
from repro.lcm.fingerprint import FingerprintTable, collect_fingerprints, emulate_waveform
from repro.lcm.flicker import flicker_index, percent_flicker, perceived_intensity
from repro.lcm.heterogeneity import HeterogeneityModel, PixelVariation
from repro.lcm.pixel import LCMPixel
from repro.lcm.power import TagPowerModel
from repro.lcm.response import LCParams, LCResponseModel

__all__ = [
    "CauchyDispersion",
    "FIDELITY_RUNGS",
    "FingerprintTable",
    "HeterogeneityModel",
    "LCDispersionModel",
    "LCMArray",
    "LCMGroup",
    "LCMPixel",
    "LCParams",
    "LCResponseModel",
    "PixelVariation",
    "TagPowerModel",
    "build_paper_tag_array",
    "collect_fingerprints",
    "emulate_waveform",
    "flicker_index",
    "percent_flicker",
    "perceived_intensity",
]
