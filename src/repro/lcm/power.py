"""Analytic tag power model.

Paper §7.2.2 (Power): the Monsoon-measured tag consumption is 0.8 mW at
*both* 4 Kbps and 8 Kbps "because they share the same DSM symbol length, and
the power consumption on I-LCM and Q-LCM are equal.  Higher data rate will
not change DSM symbol length which is limited by inherent attribute of LCM".

An LCM pixel is a capacitive load: energy is spent on 0->1 drive
transitions (charging the pixel capacitance) in proportion to pixel area,
plus a small hold current while charged, plus controller static draw.  Under
DSM the *schedule* of transitions is fixed by (L, T) regardless of the PQAM
order — higher P only redistributes which binary-weighted sub-pixels toggle,
and the expected toggled area per firing is half the group area for uniform
data — hence measured power is invariant in data rate at fixed W.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lcm.array import LCMArray

__all__ = ["TagPowerModel"]


@dataclass(frozen=True)
class TagPowerModel:
    """Energy bookkeeping for a tag drive schedule.

    Defaults are calibrated so the paper's default configuration (W = 4 ms
    DSM symbols on a 66 cm^2 four-LCM array) lands near the measured 0.8 mW.

    Parameters
    ----------
    toggle_energy_per_cm2:
        Joules per 0->1 transition per cm^2 of charged LC area
        (capacitive charging of the pixel electrode).
    hold_power_per_cm2:
        Watts of leakage per cm^2 while a pixel is held charged.
    static_power:
        Controller + shift-register quiescent draw in watts.
    tag_area_cm2:
        Physical LC area of the whole tag; relative pixel areas are
        normalised onto it, so differently-partitioned arrays (other L or
        P) describe the *same* physical tag — which is why measured power
        is rate-invariant.
    """

    toggle_energy_per_cm2: float = 2.4e-8
    hold_power_per_cm2: float = 1.3e-5
    static_power: float = 5.5e-4
    tag_area_cm2: float = 66.0

    def energy(self, array: LCMArray, drive: np.ndarray, tick_s: float) -> float:
        """Total energy in joules to play ``drive`` on ``array``."""
        drive = np.asarray(drive, dtype=np.uint8)
        if drive.shape[0] != array.n_pixels:
            raise ValueError(f"drive has {drive.shape[0]} rows for {array.n_pixels} pixels")
        duration = drive.shape[1] * tick_s
        raw = np.array([p.area for p in array.pixels])
        areas = raw / raw.sum() * self.tag_area_cm2
        # Rising edges per pixel (a leading 1 charges from rest and counts).
        padded = np.concatenate([np.zeros((drive.shape[0], 1), dtype=np.uint8), drive], axis=1)
        rising = np.maximum(np.diff(padded.astype(np.int8), axis=1), 0).sum(axis=1)
        toggle_energy = float((rising * areas).sum()) * self.toggle_energy_per_cm2
        hold_energy = float((drive * areas[:, None]).sum()) * tick_s * self.hold_power_per_cm2
        return toggle_energy + hold_energy + self.static_power * duration

    def mean_power(self, array: LCMArray, drive: np.ndarray, tick_s: float) -> float:
        """Average power in watts over the schedule duration."""
        drive = np.asarray(drive)
        duration = drive.shape[1] * tick_s
        if duration <= 0:
            raise ValueError("drive schedule must span positive time")
        return self.energy(array, drive, tick_s) / duration
