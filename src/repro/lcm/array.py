"""The tag's LCM pixel array: binary-weighted PAM groups on two
polarization channels, and the vectorised optical waveform synthesis.

Paper §6 (Tag): "an array of 4 LCMs ... each one contains 4 groups of pixels
with area ratio 8:4:2:1 to realize ASK up to 16 levels (256-QAM) ... The 4
LCMs are equipped with either 0deg or 45deg back polarizer, forming 2 I-LCMs
and 2 Q-LCMs."  The emulated configurations (§7.3) extend this to more
pixels; :func:`LCMArray.build` is parameterised accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lcm.heterogeneity import HeterogeneityModel
from repro.lcm.pixel import LCMPixel
from repro.lcm.response import LCParams, LCResponseModel
from repro.utils.rng import ensure_rng

__all__ = ["LCMArray", "LCMGroup", "build_paper_tag_array"]

_CHANNEL_ANGLES = {"I": 0.0, "Q": np.pi / 4.0}

# Fidelity ladder rungs for the polarization optics (see
# repro/optics/polarstack.py).  "malus" is the frozen scalar paper model.
FIDELITY_RUNGS = ("malus", "jones", "stokes")


@dataclass
class LCMGroup:
    """One DSM transmitter: a binary-weighted PAM modulator on one channel.

    ``pixels`` are ordered most-significant first (largest area first), so a
    PAM level's binary expansion maps positionally onto drive bits.
    """

    channel: str
    index: int
    pixels: list[LCMPixel]

    def __post_init__(self) -> None:
        if self.channel not in _CHANNEL_ANGLES:
            raise ValueError(f"channel must be 'I' or 'Q', got {self.channel!r}")
        if not self.pixels:
            raise ValueError("a group needs at least one pixel")

    @property
    def n_levels(self) -> int:
        """Number of PAM amplitude levels this group can express."""
        return 1 << len(self.pixels)

    @property
    def nominal_area(self) -> float:
        """Total nominal area of the group (sum of pixel areas)."""
        return sum(p.area for p in self.pixels)

    def level_to_drive(self, level: int) -> np.ndarray:
        """Binary expansion of a PAM level onto this group's pixels.

        Level ``k`` charges the subset of pixels whose areas sum to
        ``k / (n_levels - 1)`` of the group area, i.e. the MSB-first binary
        expansion of ``k``.
        """
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range [0, {self.n_levels - 1}]")
        n = len(self.pixels)
        return np.array([(level >> (n - 1 - i)) & 1 for i in range(n)], dtype=np.uint8)


class LCMArray:
    """The complete tag pixel array plus its waveform synthesiser.

    The array holds ``groups`` (DSM transmitters) for the two polarization
    channels and exposes :meth:`emit`, which turns a per-pixel drive
    schedule into the *complex baseband* waveform a polarization-diverse
    reader observes:

    .. math::
        u(t) = e^{j 2 \\Delta\\theta_{roll}}
               \\sum_i a_i \\, s_i(t) \\, e^{j 2 \\theta_i}

    where ``s_i(t) = -cos(pi * phi_i(t))`` is the pixel's nonlinear bipolar
    optical amplitude and amplitudes are normalised so a fully charged
    channel sums to +1.

    ``fidelity`` selects the polarization rung: the default ``"malus"`` is
    the paper's scalar model (frozen — byte-identical to every pre-ladder
    golden); ``"jones"``/``"stokes"`` route the amplitude through the
    spectral polarizer-stack engine in :mod:`repro.optics.polarstack`,
    configured by ``polarization`` (a ``PolarStackConfig``; the ideal
    default collapses bitwise onto the Malus path).
    """

    def __init__(
        self,
        groups: list[LCMGroup],
        params: LCParams | None = None,
        fidelity: str = "malus",
        polarization=None,
    ):
        if not groups:
            raise ValueError("array needs at least one group")
        if fidelity not in FIDELITY_RUNGS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_RUNGS}, got {fidelity!r}"
            )
        self.groups = groups
        self.params = params or LCParams()
        self.fidelity = fidelity
        if fidelity == "malus":
            self.polarization = polarization
        else:
            from repro.optics.polarstack import PolarStackConfig

            self.polarization = (
                polarization if polarization is not None else PolarStackConfig()
            )
            if fidelity == "jones" and self.polarization.retro_depolarization != 0.0:
                raise ValueError(
                    "fidelity='jones' is coherent; retroreflector "
                    "depolarization requires fidelity='stokes'"
                )
        self._model = LCResponseModel(self.params)
        self.pixels: list[LCMPixel] = [p for g in groups for p in g.pixels]
        # Per-channel normalisation so that each channel spans [-1, +1].
        self._channel_area = {
            ch: sum(g.nominal_area for g in groups if g.channel == ch) or 1.0
            for ch in _CHANNEL_ANGLES
        }
        self._amplitudes = np.array(
            [p.amplitude / self._channel_area[self._pixel_channel(p)] for p in self.pixels]
        )
        self._bases = np.array([p.basis for p in self.pixels], dtype=complex)
        self._time_scales = np.array([p.time_scale for p in self.pixels])
        # Per-pixel cell-gap retardance factors, column-shaped so the
        # fidelity kernels broadcast them against (n_pixels, n_samples) phi.
        self._retardance_scales = np.array(
            [p.retardance_scale for p in self.pixels]
        )[:, None]
        # Per-pixel complex mixing weights, hoisted out of emit(): they only
        # change when the array is rebuilt (e.g. after fault-plan gain
        # mutation, which reconstructs the array from its mutated pixels).
        self._weights = self._amplitudes[:, None] * self._bases[:, None]

    def _pixel_channel(self, pixel: LCMPixel) -> str:
        for g in self.groups:
            if pixel in g.pixels:
                return g.channel
        raise ValueError("pixel does not belong to this array")

    # ------------------------------------------------------------ geometry

    @property
    def n_pixels(self) -> int:
        """Total number of independently drivable pixels."""
        return len(self.pixels)

    def groups_on(self, channel: str) -> list[LCMGroup]:
        """Groups of one polarization channel, ordered by firing index."""
        return sorted((g for g in self.groups if g.channel == channel), key=lambda g: g.index)

    def pixel_slice(self, group: LCMGroup) -> slice:
        """Row range of ``group``'s pixels within drive/emit matrices."""
        start = 0
        for g in self.groups:
            if g is group:
                return slice(start, start + len(g.pixels))
            start += len(g.pixels)
        raise ValueError("group does not belong to this array")

    # ------------------------------------------------------------ waveform

    def emit(
        self,
        drive: np.ndarray,
        tick_s: float,
        fs: float,
        roll_rad: float = 0.0,
        initial_phi: float | np.ndarray = 0.0,
        initial_psi: float | np.ndarray = 0.0,
        return_state: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Complex baseband waveform for a per-pixel drive schedule.

        Parameters
        ----------
        drive:
            ``(n_pixels, n_ticks)`` 0/1 array, rows ordered as
            ``self.pixels``.
        tick_s, fs:
            Drive tick duration (seconds) and output sample rate (Hz).
        roll_rad:
            Physical roll misalignment of the whole tag; enters as a
            ``exp(j * 2 * roll)`` constellation rotation.
        return_state:
            When True also return the end-of-schedule per-pixel
            ``(phi, psi)`` state, so a later schedule can resume exactly
            where this one stopped (used to synthesise a frame in cached
            prefix + payload segments).
        """
        drive = np.asarray(drive)
        if drive.shape[0] != self.n_pixels:
            raise ValueError(f"drive has {drive.shape[0]} rows for {self.n_pixels} pixels")
        result = self._model.simulate(
            drive,
            tick_s,
            fs,
            phi0=initial_phi,
            psi0=initial_psi,
            time_scale=self._time_scales,
            return_state=return_state,
        )
        phi, state = result if return_state else (result, None)
        if self.fidelity == "malus":
            s = LCResponseModel.optical_amplitude(phi)
            u = (self._weights * s).sum(axis=0)
            u = u * np.exp(2j * roll_rad)
        else:
            from repro.optics.polarstack import jones_baseband, stokes_baseband

            baseband = jones_baseband if self.fidelity == "jones" else stokes_baseband
            u = baseband(
                self.polarization,
                phi,
                self._weights,
                roll_rad=roll_rad,
                retardance_scale=self._retardance_scales,
            )
        if return_state:
            return u, state
        return u

    # ------------------------------------------------------------- factory

    @classmethod
    def build(
        cls,
        groups_per_channel: int,
        levels_per_group: int = 16,
        heterogeneity: HeterogeneityModel | None = None,
        params: LCParams | None = None,
        rng: np.random.Generator | int | None = None,
        fidelity: str = "malus",
        polarization=None,
    ) -> "LCMArray":
        """Construct an array with ``groups_per_channel`` DSM transmitters
        per polarization channel, each a binary-weighted PAM group with
        ``levels_per_group`` levels (a power of two).

        Each group plays the role of one physical LCM: its pixels share an
        LCM-level gain factor on top of per-pixel spread.

        When a ``polarization`` stack is supplied, its dispersion model's
        operating temperature is threaded into the LC time constants here
        (``LCDispersionModel.scaled_params``) — once, at build time, so
        re-wrapping the groups in a new ``LCMArray`` never double-scales.
        At the nominal temperature the parameters object passes through
        untouched.
        """
        if groups_per_channel < 1:
            raise ValueError("need at least one group per channel")
        if levels_per_group < 2 or (levels_per_group & (levels_per_group - 1)):
            raise ValueError("levels_per_group must be a power of two >= 2")
        het = heterogeneity or HeterogeneityModel.ideal()
        gen = ensure_rng(rng)
        base = params or LCParams()
        if fidelity != "malus" and polarization is None:
            from repro.optics.polarstack import PolarStackConfig

            polarization = PolarStackConfig()
        if polarization is not None:
            base = polarization.dispersion.scaled_params(base)
        n_bits = levels_per_group.bit_length() - 1
        groups: list[LCMGroup] = []
        for channel, angle in _CHANNEL_ANGLES.items():
            for index in range(groups_per_channel):
                lcm_gain = het.sample_lcm_gain(gen)
                pixels = []
                for bit in range(n_bits):
                    var = het.sample_pixel(gen, lcm_gain=lcm_gain)
                    pixels.append(
                        LCMPixel(
                            area=float(1 << (n_bits - 1 - bit)),
                            angle_rad=angle + var.angle_error_rad,
                            gain=var.gain,
                            time_scale=var.time_scale,
                            params=base,
                            retardance_scale=var.retardance_scale,
                        )
                    )
                groups.append(LCMGroup(channel=channel, index=index, pixels=pixels))
        return cls(groups, params=base, fidelity=fidelity, polarization=polarization)


def build_paper_tag_array(
    heterogeneity: HeterogeneityModel | None = None,
    rng: np.random.Generator | int | None = None,
    fidelity: str = "malus",
    polarization=None,
) -> LCMArray:
    """The prototype tag of paper §6: 2 I-LCMs + 2 Q-LCMs, each a
    binary-weighted 16-level PAM group (8:4:2:1) — 16 pixels total, 66 cm^2
    of retroreflector behind them."""
    return LCMArray.build(
        groups_per_channel=2,
        levels_per_group=16,
        heterogeneity=heterogeneity,
        rng=rng,
        fidelity=fidelity,
        polarization=polarization,
    )
