"""Fingerprint (finite-memory) characterisation of the nonlinear LCM.

Paper §5.2: the LCM "has an infinite and nonlinear pulse response", but a
finite reference table indexed by the most recent ``V`` drive bits
approximates it with bounded error.  References are collected by driving the
modulator with a V-th order maximum-length sequence (every nonzero V-bit
window appears exactly once per period) followed by an all-zero stretch for
the all-zero context (paper footnote 5).

The same table doubles as (a) the trace-driven *emulator* used for the
modulation-scheme analysis (§5) and the emulation evaluation (§7.3), and
(b) the per-sub-channel matched-filter reference of the demodulator's tail-
effect model (§4.3.3, where context = current bit + V previous bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.mseq import max_length_sequence

__all__ = ["FingerprintTable", "collect_fingerprints", "emulate_waveform"]


@dataclass
class FingerprintTable:
    """Reference waveform chunks keyed by drive-bit context.

    A context is the integer formed by the last ``order`` drive bits
    MSB-first (oldest bit highest), *including* the current tick's bit; the
    stored chunk is the waveform emitted during the current tick under that
    history.
    """

    order: int
    tick_s: float
    fs: float
    chunks: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("fingerprint order must be >= 1")

    @property
    def chunk_len(self) -> int:
        """Samples per tick."""
        return int(round(self.tick_s * self.fs))

    @property
    def n_contexts(self) -> int:
        """Number of distinct contexts (2 ** order)."""
        return 1 << self.order

    def context_of(self, bits: np.ndarray, tick: int) -> int:
        """Context key for ``tick`` given the full drive-bit sequence.

        History before the sequence start is taken to be zeros (the
        modulator rests fully discharged).
        """
        key = 0
        for j in range(tick - self.order + 1, tick + 1):
            bit = int(bits[j]) if j >= 0 else 0
            key = (key << 1) | bit
        return key

    def is_complete(self) -> bool:
        """Whether every context has a recorded chunk."""
        return len(self.chunks) == self.n_contexts

    def missing_contexts(self) -> list[int]:
        """Contexts without a recorded chunk."""
        return [c for c in range(self.n_contexts) if c not in self.chunks]

    def truncated(self, order: int) -> "FingerprintTable":
        """A lower-order table obtained by *averaging* chunks whose low
        ``order`` bits agree — the best finite-memory approximation the
        shorter history can express, used for Table 2's error study."""
        if order > self.order:
            raise ValueError(f"cannot extend order {self.order} to {order}")
        if order == self.order:
            return self
        out = FingerprintTable(order=order, tick_s=self.tick_s, fs=self.fs)
        mask = (1 << order) - 1
        sums: dict[int, np.ndarray] = {}
        counts: dict[int, int] = {}
        for key, chunk in self.chunks.items():
            short = key & mask
            if short in sums:
                sums[short] = sums[short] + chunk
                counts[short] += 1
            else:
                sums[short] = chunk.astype(complex if np.iscomplexobj(chunk) else float).copy()
                counts[short] = 1
        out.chunks = {k: sums[k] / counts[k] for k in sums}
        return out


def collect_fingerprints(
    waveform_fn,
    order: int,
    tick_s: float,
    fs: float,
    settle_ticks: int = 12,
) -> FingerprintTable:
    """Collect a complete fingerprint table by MLS excitation.

    Parameters
    ----------
    waveform_fn:
        ``waveform_fn(bits) -> np.ndarray`` mapping a drive-bit sequence
        (one bit per tick) to the emitted waveform at rate ``fs``.  The
        function must be deterministic per call (average noisy observations
        before passing them in, as the paper does with thousands of samples).
    order:
        Fingerprint memory ``V`` in bits (including the current bit).

    Notes
    -----
    The excitation is: one MLS warm-up period (so the first collected window
    sees a correct long history), one collected MLS period, then
    ``order + settle_ticks`` zeros.  The all-zero context is recorded from
    its *last* occurrence so it reflects the settled rest state (the
    paper's "padded all-zero waveform"); every other context is recorded at
    its first post-warm-up occurrence.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if settle_ticks < 0:
        raise ValueError("settle_ticks must be non-negative")
    tick_len = int(round(tick_s * fs))
    if tick_len < 1:
        raise ValueError("tick_s * fs must be at least one sample")
    if order == 1:
        # MLS needs order >= 2; a one-bit context is just {0, 1} pulses.
        mls = np.array([1], dtype=np.uint8)
    else:
        mls = max_length_sequence(order)
    drive = np.concatenate([mls, mls, np.zeros(order + settle_ticks, dtype=np.uint8)])
    waveform = np.asarray(waveform_fn(drive))
    expected = drive.size * tick_len
    if waveform.size != expected:
        raise ValueError(f"waveform_fn returned {waveform.size} samples, expected {expected}")
    table = FingerprintTable(order=order, tick_s=tick_s, fs=fs)
    # Collect from the second MLS period onward (warm history), including
    # the trailing zero stretch for zero-suffixed contexts.
    for tick in range(mls.size, drive.size):
        key = table.context_of(drive, tick)
        if key not in table.chunks or key == 0:
            table.chunks[key] = waveform[tick * tick_len : (tick + 1) * tick_len].copy()
    missing = table.missing_contexts()
    if missing:
        raise RuntimeError(f"MLS excitation failed to cover contexts: {missing[:8]}...")
    return table


def emulate_waveform(table: FingerprintTable, bits: np.ndarray) -> np.ndarray:
    """Finite-memory emulation of the modulator for a drive-bit sequence.

    This is the paper's §5.2 emulator: the waveform during tick ``j`` is the
    stored chunk for the context of the most recent ``V`` bits.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    tick_len = table.chunk_len
    sample_chunk = next(iter(table.chunks.values()))
    out = np.empty(bits.size * tick_len, dtype=sample_chunk.dtype)
    for tick in range(bits.size):
        key = table.context_of(bits, tick)
        try:
            chunk = table.chunks[key]
        except KeyError:
            raise KeyError(f"fingerprint table missing context {key:0{table.order}b}") from None
        out[tick * tick_len : (tick + 1) * tick_len] = chunk
    return out
