"""Physical response model of a liquid-crystal modulator pixel.

The paper's enabling observation (§2.2, Fig 3) is that the LC response is
highly *asymmetric*: charging completes within ~0.3 ms while discharging
shows a ~1 ms flat plateau followed by a slow relaxation lasting several
milliseconds; the response is nonlinear and carries memory of the recent
drive history (tail effect, Fig 11a).

Model
-----
Each pixel carries two state variables in ``[0, 1]``:

``phi``
    The effective director alignment: 0 = fully relaxed (light rotated 90deg)
    and 1 = fully charged (polarity preserved).
``psi``
    A molecular "stress" accumulated while the field is applied; it gates
    the beginning of relaxation and produces the discharge plateau.

Dynamics (``tau``s in seconds):

* drive on:   ``phi' = (1 - phi)(phi + a) * k`` (logistic — deep discharge
  ramps up with a visible delay, partially-relaxed pixels restart faster,
  which *is* the tail effect), and ``psi' = (1 - psi)/tau_stress``.
* drive off:  ``psi' = -psi/tau_plateau`` and
  ``phi' = -phi * (max(0, 1 - psi/psi_gate) + leak) / tau_discharge`` —
  while stress exceeds the gate the pixel barely relaxes (plateau), then
  relaxes exponentially.

Both branches admit closed-form solutions on intervals of constant drive,
so waveforms are evaluated exactly at the output sample instants with no
Euler integration error; simulation cost is one vectorised expression per
drive tick.

The emitted *optical* signal applies the Malus-law mixture nonlinearity:
a pixel at alignment ``phi`` behaves as a fraction ``m(phi) = sin^2(phi*pi/2)``
of its area polarized at the back-polarizer angle and ``1 - m`` at +90deg,
i.e. a bipolar amplitude ``s = 2m - 1 = -cos(pi*phi)`` on the pixel's own
polarization basis vector.  This mixture model is what yields the paper's
``p_I(t) = j * p_Q(t)`` orthogonality of simultaneous I/Q pulses (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.utils.backend import active_backend

__all__ = [
    "LCParams",
    "LCResponseModel",
    "is_uniform_tick_grid",
    "tick_sample_boundaries",
]


def tick_sample_boundaries(n_ticks: int, tick_s: float, fs: float) -> np.ndarray:
    """Integer sample boundaries of an ``n_ticks`` drive grid at rate ``fs``.

    Boundary ``j`` is ``floor(j * total / n_ticks)`` with
    ``total = round(n_ticks * tick_s * fs)`` — the total sample count
    prorated *exactly* over the ticks in integer arithmetic.  Guarantees:

    * ``boundaries[0] == 0`` and ``boundaries[-1] == total``;
    * strictly increasing whenever ``total >= n_ticks`` (every tick owns at
      least one sample — per-index float rounding of ``j * tick_s * fs``
      could previously collapse or invert a span when ``tick_s * fs`` was
      small or non-integral);
    * identical to the historical ``round(j * tick_s * fs)`` table whenever
      ``tick_s * fs`` is an integer (every shipped operating point).

    Raises ``ValueError`` when the rate is too low to give each tick a
    sample, instead of silently emitting empty spans.
    """
    if n_ticks < 0:
        raise ValueError("n_ticks must be non-negative")
    if n_ticks == 0:
        return np.zeros(1, dtype=np.int64)
    if tick_s <= 0 or fs <= 0:
        raise ValueError("tick_s and fs must be positive")
    total = int(round(n_ticks * tick_s * fs))
    if total < n_ticks:
        raise ValueError(
            f"fs too low: {n_ticks} ticks of {tick_s} s at {fs} Hz yield only "
            f"{total} samples (need at least one per tick)"
        )
    return (np.arange(n_ticks + 1, dtype=np.int64) * total) // n_ticks


def is_uniform_tick_grid(n_ticks: int, tick_s: float, fs: float) -> bool:
    """True when every tick of the grid maps to exactly ``round(tick_s*fs)``
    samples — and so does every prefix of the grid.

    This is the condition under which a drive schedule may be cut at any
    tick boundary and simulated in segments (carrying ``(phi, psi)`` across
    the cut) with output bitwise identical to the uncut run: segment
    boundary tables are then plain multiples of the per-tick sample count,
    independent of where the cut lands.
    """
    if n_ticks <= 0 or tick_s <= 0 or fs <= 0:
        return False
    spt = int(round(tick_s * fs))
    # n * |error| < 0.5 makes round(k * tick_s * fs) == k * spt for every
    # k <= n, i.e. the exact-proration table degenerates to the uniform grid.
    return spt >= 1 and n_ticks * abs(tick_s * fs - spt) < 0.5 - 1e-9


# --------------------------------------------------------------------------
# Elementwise closed-form state maps.
#
# These four functions are the *entire* LC arithmetic: state after holding a
# constant drive for time ``t``, as pure elementwise ufunc chains.  Both the
# public ``charge``/``discharge`` API and the two-pass ``simulate`` engine
# evaluate them (on different shapes), so every consumer computes the exact
# same IEEE operation sequence per element — which is what makes the
# vectorized engine bitwise-equivalent to the frozen scalar reference.


def _charge_phi(p: "LCParams", phi0, t):
    """Alignment after driving ON for ``t`` (logistic closed form)."""
    xp = active_backend().xp
    a = p.charge_softness
    rate = (1.0 + a) / p.tau_charge
    # Logistic solution through (phi + a)/(1 - phi) = C * exp(rate * t).
    ratio0 = (phi0 + a) / xp.maximum(1.0 - phi0, 1e-12)
    ratio = ratio0 * xp.exp(rate * t)
    phi = (ratio - a) / (ratio + 1.0)
    return xp.clip(phi, 0.0, 1.0)


def _charge_psi(p: "LCParams", psi0, t):
    """Stress after driving ON for ``t``."""
    xp = active_backend().xp
    psi = 1.0 - (1.0 - psi0) * xp.exp(-t / p.tau_stress)
    return xp.clip(psi, 0.0, 1.0)


def _discharge_phi(p: "LCParams", phi0, psi0, t):
    """Alignment after relaxing for ``t`` from state ``(phi0, psi0)``."""
    backend = active_backend()
    xp = backend.xp
    # Gate-opening instant per pixel: psi(t*) == psi_gate.
    with backend.errstate(divide="ignore"):
        t_open = xp.where(
            psi0 > p.psi_gate,
            p.tau_plateau * xp.log(xp.maximum(psi0, 1e-12) / p.psi_gate),
            0.0,
        )
    # Integral of the gated relaxation rate max(0, 1 - psi/psi_gate)
    # from 0 to t.  Before t_open the integrand is zero; after, with
    # u = t - t_open and psi = psi_gate * exp(-u/tau_plateau):
    #   integral = u - tau_plateau * (1 - exp(-u/tau_plateau)).
    u = xp.maximum(t - t_open, 0.0)
    gated = u - p.tau_plateau * (1.0 - xp.exp(-u / p.tau_plateau))
    # Pixels that start below the gate integrate from their own psi0:
    # rate = 1 - (psi0/psi_gate) exp(-s/tau_plateau) (always positive
    # once psi0 < gate), integral = t - (psi0/psi_gate)*tau_plateau*(1-exp(-t/tau_p)).
    below = psi0 <= p.psi_gate
    gated_below = t - (psi0 / p.psi_gate) * p.tau_plateau * (1.0 - xp.exp(-t / p.tau_plateau))
    gated = xp.where(below, gated_below, gated)
    exponent = (gated + p.leak * t) / p.tau_discharge
    phi = phi0 * xp.exp(-exponent)
    return xp.clip(phi, 0.0, 1.0)


def _discharge_phi_above(p: "LCParams", phi0, psi0, t):
    """The ``psi0 > psi_gate`` lane of :func:`_discharge_phi`, alone.

    ``where`` evaluates both lanes everywhere; when a caller already
    knows every row sits above the gate, evaluating only the selected
    lane produces the same bits while skipping the other lane's
    exponentials.  Callers must guarantee ``psi0 > psi_gate`` per row.
    """
    xp = active_backend().xp
    t_open = p.tau_plateau * xp.log(xp.maximum(psi0, 1e-12) / p.psi_gate)
    u = xp.maximum(t - t_open, 0.0)
    gated = u - p.tau_plateau * (1.0 - xp.exp(-u / p.tau_plateau))
    exponent = (gated + p.leak * t) / p.tau_discharge
    phi = phi0 * xp.exp(-exponent)
    return xp.clip(phi, 0.0, 1.0)


def _discharge_phi_below(p: "LCParams", phi0, psi0, t):
    """The ``psi0 <= psi_gate`` lane of :func:`_discharge_phi`, alone.

    Same contract as :func:`_discharge_phi_above`, for rows at or below
    the gate.  When ``t`` is a shared in-tick offset vector the lane's
    only exponential collapses to that vector's length.
    """
    xp = active_backend().xp
    gated = t - (psi0 / p.psi_gate) * p.tau_plateau * (1.0 - xp.exp(-t / p.tau_plateau))
    exponent = (gated + p.leak * t) / p.tau_discharge
    phi = phi0 * xp.exp(-exponent)
    return xp.clip(phi, 0.0, 1.0)


def _discharge_psi(p: "LCParams", psi0, t):
    """Stress after relaxing for ``t``."""
    xp = active_backend().xp
    psi = psi0 * xp.exp(-t / p.tau_plateau)
    return xp.clip(psi, 0.0, 1.0)


@dataclass(frozen=True)
class LCParams:
    """Physical constants of one LC pixel (times in seconds).

    Defaults are tuned so that, at the paper's operating point, the pulse
    exhibits: charging essentially complete within ~0.3 ms (tau_1 = 0.5 ms
    slot), a ~0.8-1 ms discharge plateau, and full relaxation within
    ~3.5 ms (tau_0) — the Fig 3 shape.
    """

    tau_charge: float = 60e-6
    """Logistic charging time constant (before the (1+a) speed-up factor)."""

    charge_softness: float = 0.08
    """Logistic offset ``a``; smaller values lengthen the ramp-up delay from
    a deeply relaxed state and strengthen the tail effect."""

    tau_stress: float = 150e-6
    """Stress build-up time constant while charged."""

    tau_plateau: float = 750e-6
    """Stress decay time constant after the field is removed."""

    psi_gate: float = 0.35
    """Stress level below which relaxation proceeds; sets plateau length
    ``tau_plateau * ln(psi0 / psi_gate)``."""

    tau_discharge: float = 600e-6
    """Relaxation time constant once the stress gate opens."""

    leak: float = 0.02
    """Residual relaxation rate during the plateau (the plateau is only
    *relatively* flat in Fig 3)."""

    def scaled(self, factor: float) -> "LCParams":
        """A copy with all time constants multiplied by ``factor``.

        Used to model faster LC materials (the paper's discussion cites
        CCN-47 and ferroelectric LCs with far shorter restoration times) and
        per-pixel manufacturing spread.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            tau_charge=self.tau_charge * factor,
            tau_stress=self.tau_stress * factor,
            tau_plateau=self.tau_plateau * factor,
            tau_discharge=self.tau_discharge * factor,
        )

    # -------------------------------------------------- material presets

    @classmethod
    def cots_tn(cls) -> "LCParams":
        """The prototype's COTS twisted-nematic shutter (~3.5 ms restore)."""
        return cls()

    @classmethod
    def ferroelectric(cls) -> "LCParams":
        """Ferroelectric LC, ~20 us restoration (paper ref [15]).

        The paper's conclusion: "the RetroTurbo design can be easily
        applied on much faster switching liquid crystal" — every time
        constant shrinks by the restoration-time ratio, and with it the
        slot time, pushing the same modulation stack to Mbps-class rates.
        """
        return cls().scaled(20e-6 / 3.5e-3)

    @classmethod
    def ccn47(cls) -> "LCParams":
        """CCN-47 nanosecond electro-optic LC, ~30 ns (paper ref [14]).

        Included for completeness of the paper's material ladder; at this
        scale the tag electronics, not the LC, bound the symbol rate, so
        treat derived rates as the optical-medium limit only.
        """
        return cls().scaled(30e-9 / 3.5e-3)


class LCResponseModel:
    """Exact segment-wise integrator for :class:`LCParams` dynamics.

    All state arguments broadcast: the model simulates any number of pixels
    in parallel as long as their *parameters* are shared; heterogeneous
    pixels use one model instance per distinct parameter set (see
    :class:`repro.lcm.array.LCMArray`).
    """

    def __init__(self, params: LCParams | None = None):
        self.params = params or LCParams()

    # ------------------------------------------------------------ charging

    @staticmethod
    def _broadcast(phi0, psi0, t, time_scale) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shape initial state to ``(n_pixels, 1)`` and times to
        ``(n_pixels_or_1, n_times)``, applying the per-pixel time dilation."""
        phi0 = np.atleast_1d(np.asarray(phi0, dtype=float))[:, None]
        psi0 = np.atleast_1d(np.asarray(psi0, dtype=float))[:, None]
        t = np.asarray(t, dtype=float)[None, :]
        if time_scale is not None:
            scale = np.atleast_1d(np.asarray(time_scale, dtype=float))[:, None]
            if np.any(scale <= 0):
                raise ValueError("time_scale entries must be positive")
            t = t / scale
        return phi0, psi0, t

    def charge(
        self,
        phi0: np.ndarray,
        psi0: np.ndarray,
        t: np.ndarray,
        time_scale: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """State at offsets ``t`` (seconds) into a constant-drive-ON segment.

        ``phi0``/``psi0`` have shape ``(n_pixels,)`` (or scalar) and ``t``
        shape ``(n_times,)``; outputs have shape ``(n_pixels, n_times)``.
        ``time_scale`` optionally dilates each pixel's time axis — scaling
        every time constant of pixel ``i`` by ``c_i`` is equivalent to
        evaluating its trajectory at ``t / c_i``, which is how per-pixel
        response-speed heterogeneity is simulated in one vectorised pass.
        """
        p = self.params
        phi0, psi0, t = self._broadcast(phi0, psi0, t, time_scale)
        return _charge_phi(p, phi0, t), _charge_psi(p, psi0, t)

    # --------------------------------------------------------- discharging

    def discharge(
        self,
        phi0: np.ndarray,
        psi0: np.ndarray,
        t: np.ndarray,
        time_scale: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """State at offsets ``t`` into a constant-drive-OFF segment."""
        p = self.params
        phi0, psi0, t = self._broadcast(phi0, psi0, t, time_scale)
        return _discharge_phi(p, phi0, psi0, t), _discharge_psi(p, psi0, t)

    # ------------------------------------------------------------ waveform

    def simulate(
        self,
        drive: np.ndarray,
        tick_s: float,
        fs: float,
        phi0: np.ndarray | float = 0.0,
        psi0: np.ndarray | float = 0.0,
        time_scale: np.ndarray | None = None,
        return_state: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Alignment trajectory ``phi`` for a tick-wise drive schedule.

        Two-pass vectorized engine.  Pass 1 walks the tick recurrence on
        *end-of-tick* boundary states only — O(n_pixels) work per tick
        through the closed-form maps, evaluating the charge/discharge branch
        only for the pixels that need it.  Pass 2 expands every boundary
        state to its in-tick samples in one broadcast evaluation over the
        full ``(n_pixels, n_samples)`` grid — no per-tick ``arange`` /
        ``concatenate`` / double-branch allocations.  Both passes run the
        identical elementwise map arithmetic as the frozen scalar reference
        (:mod:`repro.lcm.response_reference`), so outputs agree bitwise.

        Parameters
        ----------
        drive:
            Boolean/0-1 array of shape ``(n_pixels, n_ticks)``; drive is
            constant within each tick of duration ``tick_s``.
        tick_s, fs:
            Tick duration (seconds) and output sample rate (Hz).
        phi0, psi0:
            Initial state, scalar or per-pixel.
        time_scale:
            Optional per-pixel response-speed dilation (see :meth:`charge`).
        return_state:
            When True also return the end-of-schedule ``(phi, psi)`` state,
            allowing a later schedule to resume where this one stopped.

        Returns
        -------
        ``(n_pixels, n_samples)`` float array of ``phi`` sampled at ``fs``,
        where ``n_samples = round(n_ticks * tick_s * fs)`` (boundaries per
        :func:`tick_sample_boundaries`).  With ``return_state``, a tuple
        ``(phi_samples, (phi_end, psi_end))``.
        """
        p = self.params
        backend = active_backend()
        xp = backend.xp
        drive = xp.atleast_2d(xp.asarray(drive))
        n_pixels, n_ticks = drive.shape
        on = drive.astype(bool)
        boundaries = tick_sample_boundaries(n_ticks, tick_s, fs)
        n_samples = int(boundaries[-1])
        phi = xp.broadcast_to(xp.asarray(phi0, dtype=float), (n_pixels,)).copy()
        psi = xp.broadcast_to(xp.asarray(psi0, dtype=float), (n_pixels,)).copy()
        if time_scale is not None:
            scale = xp.atleast_1d(xp.asarray(time_scale, dtype=float))
            if backend.scalar(xp.any(scale <= 0)):
                raise ValueError("time_scale entries must be positive")
            scale = xp.broadcast_to(scale, (n_pixels,))
            t_end = tick_s / scale
        else:
            scale = None
            t_end = xp.full(n_pixels, float(tick_s))

        # ---- pass 1: end-of-tick boundary states -------------------------
        # Tick-major (n_ticks, n_pixels) layout keeps every per-tick row
        # access contiguous.  Every exponential of the (per-pixel constant)
        # tick duration is hoisted out of the recurrences.
        a = p.charge_softness
        rate = (1.0 + a) / p.tau_charge
        e_charge = xp.exp(rate * t_end)
        e_stress = xp.exp(-t_end / p.tau_stress)
        e_plateau = xp.exp(-t_end / p.tau_plateau)
        on_t = xp.ascontiguousarray(on.T)
        n_on = on.sum(axis=0)
        # With state starting inside [0, 1] and the hoisted exponentials on
        # the contracting side of 1, the stress maps cannot leave [0, 1]
        # even under IEEE rounding (affine/product combinations of [0, 1]
        # values with representable endpoints) — the per-tick clips are then
        # exact identities and the recurrence skips them.  Exotic operating
        # points fail the guard and keep the clips; either way the computed
        # values are bitwise those of the reference.
        psi_clips_identity = (
            n_ticks > 0
            and bool(backend.scalar(xp.all((psi >= 0.0) & (psi <= 1.0))))
            and float(backend.scalar(xp.max(e_stress))) <= 1.0
            and float(backend.scalar(xp.max(e_plateau))) <= 1.0
        )

        # Pass 1a — stress chain.  psi never depends on phi, so its
        # recurrence runs first, on its own few ufuncs per tick.  The loops
        # run entirely in preallocated scratch (out=/copyto) — the same
        # IEEE operations as the reference maps, minus every allocation.
        n_on_list = n_on.tolist()
        psi_start_t = xp.empty((n_ticks, n_pixels))
        b1 = xp.empty(n_pixels)
        b2 = xp.empty(n_pixels)
        for j in range(n_ticks):
            psi_start_t[j] = psi
            k = n_on_list[j]
            if k:
                xp.subtract(1.0, psi, out=b1)
                xp.multiply(b1, e_stress, out=b1)
                xp.subtract(1.0, b1, out=b1)
            if k == n_pixels:
                tgt = b1
            else:
                xp.multiply(psi, e_plateau, out=b2)
                tgt = b2
                if k:
                    xp.copyto(b2, b1, where=on_t[j])
            if not psi_clips_identity:
                xp.maximum(tgt, 0.0, out=tgt)
                xp.minimum(tgt, 1.0, out=tgt)
            psi, b1, b2 = tgt, psi, (b1 if tgt is b2 else b2)

        # Pass 1b — with every tick-start stress known, the discharge-phi
        # map is just multiplication by a per-(pixel, tick) decay factor,
        # so the whole factor matrix evaluates in one vectorized sweep
        # (same elementwise arithmetic as _discharge_phi).
        t_mat = t_end[None, :]
        s0 = psi_start_t
        with backend.errstate(divide="ignore"):
            t_open = xp.where(
                s0 > p.psi_gate,
                p.tau_plateau * xp.log(xp.maximum(s0, 1e-12) / p.psi_gate),
                0.0,
            )
        u = xp.maximum(t_mat - t_open, 0.0)
        gated = u - p.tau_plateau * (1.0 - xp.exp(-u / p.tau_plateau))
        gated_below = t_mat - (s0 / p.psi_gate) * p.tau_plateau * (
            1.0 - xp.exp(-t_mat / p.tau_plateau)
        )
        gated = xp.where(s0 <= p.psi_gate, gated_below, gated)
        decay_t = xp.exp(-((gated + p.leak * t_mat) / p.tau_discharge))

        # Pass 1c — alignment chain: a Moebius step for charging pixels,
        # one multiply by the precomputed factor for discharging ones.
        # The Moebius step keeps [0, 1] whenever e_charge >= 1 (ratio stays
        # >= a, and (ratio - a)/(ratio + 1) < 1), and multiplying by a
        # factor checked to lie in [0, 1] cannot escape either — so the
        # same clip-skip reasoning applies, with the factor matrix checked
        # directly instead of argued from parameters.
        phi_clips_identity = (
            n_ticks > 0
            and bool(backend.scalar(xp.all((phi >= 0.0) & (phi <= 1.0))))
            and float(backend.scalar(xp.min(e_charge))) >= 1.0
            and bool(backend.scalar(xp.all((decay_t >= 0.0) & (decay_t <= 1.0))))
        )
        phi_start_t = xp.empty((n_ticks, n_pixels))
        c1 = xp.empty(n_pixels)
        c2 = xp.empty(n_pixels)
        c3 = xp.empty(n_pixels)
        for j in range(n_ticks):
            phi_start_t[j] = phi
            k = n_on_list[j]
            if k:
                # ratio = ((phi + a) / max(1 - phi, 1e-12)) * e_charge,
                # charged = (ratio - a) / (ratio + 1) — reference op order.
                xp.add(phi, a, out=c1)
                xp.subtract(1.0, phi, out=c2)
                xp.maximum(c2, 1e-12, out=c2)
                xp.divide(c1, c2, out=c1)
                xp.multiply(c1, e_charge, out=c1)
                xp.subtract(c1, a, out=c2)
                xp.add(c1, 1.0, out=c1)
                xp.divide(c2, c1, out=c2)
            if k == n_pixels:
                tgt = c2
            else:
                xp.multiply(phi, decay_t[j], out=c3)
                tgt = c3
                if k:
                    xp.copyto(c3, c2, where=on_t[j])
            if not phi_clips_identity:
                xp.maximum(tgt, 0.0, out=tgt)
                xp.minimum(tgt, 1.0, out=tgt)
            if tgt is c2:
                phi, c2 = c2, phi
            else:
                phi, c3 = c3, phi

        # ---- pass 2: expand boundary states to samples -------------------
        if n_samples == 0:
            out = xp.empty((n_pixels, 0), dtype=float)
        elif n_samples % n_ticks == 0:
            # Uniform grid (every shipped operating point: boundaries are
            # then exact multiples of the per-tick sample count).  Expand on
            # a (pixel, tick, sample-in-tick) view: states vary per
            # (pixel, tick) pair while the in-tick sample offsets are one
            # shared vector — the exact broadcast shape the reference maps
            # evaluate, so per-sample gathers disappear and the offset-only
            # exponentials collapse to spt-sized vectors.
            spt = n_samples // n_ticks
            # Identical arithmetic to the reference's (arange(n) + 1.0)/fs.
            t_local = (xp.arange(spt) + 1.0) / fs
            out = xp.empty((n_pixels, n_samples), dtype=float)
            out3 = out.reshape(n_pixels, n_ticks, spt)
            ph = phi_start_t.T
            ps = psi_start_t.T
            # Discharging (pixel, tick) rows split by their gate state: the
            # branch condition of _discharge_phi's np.where is constant per
            # row, so evaluating only the selected lane per row subset gives
            # identical bits while skipping the unselected lane's
            # exponentials (most frame rows sit below the gate, whose lane
            # is by far the cheaper one on a shared offset vector).
            if scale is None:
                if on.all():
                    out3[:] = _charge_phi(p, ph[:, :, None], t_local[None, None, :])
                else:
                    off = ~on
                    if on.any():
                        out3[on] = _charge_phi(p, ph[on][:, None], t_local[None, :])
                    below = ps <= p.psi_gate
                    for mask, lane in (
                        (off & below, _discharge_phi_below),
                        (off & ~below, _discharge_phi_above),
                    ):
                        if mask.any():
                            out3[mask] = lane(
                                p, ph[mask][:, None], ps[mask][:, None], t_local[None, :]
                            )
            else:
                t_pix = t_local[None, :] / scale[:, None]
                if on.all():
                    out3[:] = _charge_phi(p, ph[:, :, None], t_pix[:, None, :])
                else:
                    off = ~on
                    pix = xp.broadcast_to(xp.arange(n_pixels)[:, None], on.shape)
                    if on.any():
                        out3[on] = _charge_phi(p, ph[on][:, None], t_pix[pix[on]])
                    below = ps <= p.psi_gate
                    for mask, lane in (
                        (off & below, _discharge_phi_below),
                        (off & ~below, _discharge_phi_above),
                    ):
                        if mask.any():
                            out3[mask] = lane(
                                p, ph[mask][:, None], ps[mask][:, None], t_pix[pix[mask]]
                            )
        else:
            # Non-uniform boundary table: flat (pixel, sample) expansion
            # with per-sample tick gathers.
            spans = xp.diff(xp.asarray(boundaries))
            tick_of = xp.repeat(xp.arange(n_ticks), spans)
            # Per-sample offset into its tick: identical arithmetic to the
            # reference's per-tick (arange(n_here) + 1.0) / fs.
            t_row = (xp.arange(n_samples) - xp.asarray(boundaries)[tick_of] + 1.0) / fs
            if scale is not None:
                t_grid = t_row[None, :] / scale[:, None]
            else:
                t_grid = xp.broadcast_to(t_row, (n_pixels, n_samples))
            grid_on = on[:, tick_of]
            phi0_grid = xp.ascontiguousarray(phi_start_t.T[:, tick_of])
            psi0_grid = psi_start_t.T[:, tick_of]
            out = xp.empty((n_pixels, n_samples), dtype=float)
            if grid_on.all():
                out[:] = _charge_phi(p, phi0_grid, t_grid)
            elif not grid_on.any():
                out[:] = _discharge_phi(p, phi0_grid, psi0_grid, t_grid)
            else:
                grid_off = ~grid_on
                out[grid_on] = _charge_phi(p, phi0_grid[grid_on], t_grid[grid_on])
                out[grid_off] = _discharge_phi(
                    p, phi0_grid[grid_off], psi0_grid[grid_off], t_grid[grid_off]
                )
        if return_state:
            return out, (phi, psi)
        return out

    # --------------------------------------------------------- nonlinearity

    @staticmethod
    def transmit_fraction(phi: np.ndarray) -> np.ndarray:
        """Fraction of the pixel's light leaving at the polarizer angle.

        The Malus-law mixture nonlinearity ``m(phi) = sin^2(phi * pi / 2)``.
        """
        return np.sin(np.asarray(phi) * (np.pi / 2.0)) ** 2

    @classmethod
    def optical_amplitude(cls, phi: np.ndarray) -> np.ndarray:
        """Bipolar amplitude on the pixel's polarization basis.

        ``s = 2 m(phi) - 1 = -cos(pi * phi)``: -1 fully relaxed (light at
        theta_t + 90deg), +1 fully charged (light at theta_t).
        """
        return 2.0 * cls.transmit_fraction(phi) - 1.0

    def pulse_response(self, charge_ticks: int, total_ticks: int, tick_s: float, fs: float) -> np.ndarray:
        """Optical pulse of a single pixel charged for ``charge_ticks`` ticks.

        Convenience used for Fig 3-style plots and unit tests: starts fully
        relaxed, drives ON for ``charge_ticks`` then OFF for the remainder.
        """
        if not 0 < charge_ticks <= total_ticks:
            raise ValueError("need 0 < charge_ticks <= total_ticks")
        drive = np.zeros((1, total_ticks), dtype=np.uint8)
        drive[0, :charge_ticks] = 1
        phi = self.simulate(drive, tick_s, fs)
        return self.optical_amplitude(phi)[0]
