"""Physical response model of a liquid-crystal modulator pixel.

The paper's enabling observation (§2.2, Fig 3) is that the LC response is
highly *asymmetric*: charging completes within ~0.3 ms while discharging
shows a ~1 ms flat plateau followed by a slow relaxation lasting several
milliseconds; the response is nonlinear and carries memory of the recent
drive history (tail effect, Fig 11a).

Model
-----
Each pixel carries two state variables in ``[0, 1]``:

``phi``
    The effective director alignment: 0 = fully relaxed (light rotated 90deg)
    and 1 = fully charged (polarity preserved).
``psi``
    A molecular "stress" accumulated while the field is applied; it gates
    the beginning of relaxation and produces the discharge plateau.

Dynamics (``tau``s in seconds):

* drive on:   ``phi' = (1 - phi)(phi + a) * k`` (logistic — deep discharge
  ramps up with a visible delay, partially-relaxed pixels restart faster,
  which *is* the tail effect), and ``psi' = (1 - psi)/tau_stress``.
* drive off:  ``psi' = -psi/tau_plateau`` and
  ``phi' = -phi * (max(0, 1 - psi/psi_gate) + leak) / tau_discharge`` —
  while stress exceeds the gate the pixel barely relaxes (plateau), then
  relaxes exponentially.

Both branches admit closed-form solutions on intervals of constant drive,
so waveforms are evaluated exactly at the output sample instants with no
Euler integration error; simulation cost is one vectorised expression per
drive tick.

The emitted *optical* signal applies the Malus-law mixture nonlinearity:
a pixel at alignment ``phi`` behaves as a fraction ``m(phi) = sin^2(phi*pi/2)``
of its area polarized at the back-polarizer angle and ``1 - m`` at +90deg,
i.e. a bipolar amplitude ``s = 2m - 1 = -cos(pi*phi)`` on the pixel's own
polarization basis vector.  This mixture model is what yields the paper's
``p_I(t) = j * p_Q(t)`` orthogonality of simultaneous I/Q pulses (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["LCParams", "LCResponseModel"]


@dataclass(frozen=True)
class LCParams:
    """Physical constants of one LC pixel (times in seconds).

    Defaults are tuned so that, at the paper's operating point, the pulse
    exhibits: charging essentially complete within ~0.3 ms (tau_1 = 0.5 ms
    slot), a ~0.8-1 ms discharge plateau, and full relaxation within
    ~3.5 ms (tau_0) — the Fig 3 shape.
    """

    tau_charge: float = 60e-6
    """Logistic charging time constant (before the (1+a) speed-up factor)."""

    charge_softness: float = 0.08
    """Logistic offset ``a``; smaller values lengthen the ramp-up delay from
    a deeply relaxed state and strengthen the tail effect."""

    tau_stress: float = 150e-6
    """Stress build-up time constant while charged."""

    tau_plateau: float = 750e-6
    """Stress decay time constant after the field is removed."""

    psi_gate: float = 0.35
    """Stress level below which relaxation proceeds; sets plateau length
    ``tau_plateau * ln(psi0 / psi_gate)``."""

    tau_discharge: float = 600e-6
    """Relaxation time constant once the stress gate opens."""

    leak: float = 0.02
    """Residual relaxation rate during the plateau (the plateau is only
    *relatively* flat in Fig 3)."""

    def scaled(self, factor: float) -> "LCParams":
        """A copy with all time constants multiplied by ``factor``.

        Used to model faster LC materials (the paper's discussion cites
        CCN-47 and ferroelectric LCs with far shorter restoration times) and
        per-pixel manufacturing spread.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            tau_charge=self.tau_charge * factor,
            tau_stress=self.tau_stress * factor,
            tau_plateau=self.tau_plateau * factor,
            tau_discharge=self.tau_discharge * factor,
        )

    # -------------------------------------------------- material presets

    @classmethod
    def cots_tn(cls) -> "LCParams":
        """The prototype's COTS twisted-nematic shutter (~3.5 ms restore)."""
        return cls()

    @classmethod
    def ferroelectric(cls) -> "LCParams":
        """Ferroelectric LC, ~20 us restoration (paper ref [15]).

        The paper's conclusion: "the RetroTurbo design can be easily
        applied on much faster switching liquid crystal" — every time
        constant shrinks by the restoration-time ratio, and with it the
        slot time, pushing the same modulation stack to Mbps-class rates.
        """
        return cls().scaled(20e-6 / 3.5e-3)

    @classmethod
    def ccn47(cls) -> "LCParams":
        """CCN-47 nanosecond electro-optic LC, ~30 ns (paper ref [14]).

        Included for completeness of the paper's material ladder; at this
        scale the tag electronics, not the LC, bound the symbol rate, so
        treat derived rates as the optical-medium limit only.
        """
        return cls().scaled(30e-9 / 3.5e-3)


class LCResponseModel:
    """Exact segment-wise integrator for :class:`LCParams` dynamics.

    All state arguments broadcast: the model simulates any number of pixels
    in parallel as long as their *parameters* are shared; heterogeneous
    pixels use one model instance per distinct parameter set (see
    :class:`repro.lcm.array.LCMArray`).
    """

    def __init__(self, params: LCParams | None = None):
        self.params = params or LCParams()

    # ------------------------------------------------------------ charging

    @staticmethod
    def _broadcast(phi0, psi0, t, time_scale) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shape initial state to ``(n_pixels, 1)`` and times to
        ``(n_pixels_or_1, n_times)``, applying the per-pixel time dilation."""
        phi0 = np.atleast_1d(np.asarray(phi0, dtype=float))[:, None]
        psi0 = np.atleast_1d(np.asarray(psi0, dtype=float))[:, None]
        t = np.asarray(t, dtype=float)[None, :]
        if time_scale is not None:
            scale = np.atleast_1d(np.asarray(time_scale, dtype=float))[:, None]
            if np.any(scale <= 0):
                raise ValueError("time_scale entries must be positive")
            t = t / scale
        return phi0, psi0, t

    def charge(
        self,
        phi0: np.ndarray,
        psi0: np.ndarray,
        t: np.ndarray,
        time_scale: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """State at offsets ``t`` (seconds) into a constant-drive-ON segment.

        ``phi0``/``psi0`` have shape ``(n_pixels,)`` (or scalar) and ``t``
        shape ``(n_times,)``; outputs have shape ``(n_pixels, n_times)``.
        ``time_scale`` optionally dilates each pixel's time axis — scaling
        every time constant of pixel ``i`` by ``c_i`` is equivalent to
        evaluating its trajectory at ``t / c_i``, which is how per-pixel
        response-speed heterogeneity is simulated in one vectorised pass.
        """
        p = self.params
        phi0, psi0, t = self._broadcast(phi0, psi0, t, time_scale)
        a = p.charge_softness
        rate = (1.0 + a) / p.tau_charge
        # Logistic solution through (phi + a)/(1 - phi) = C * exp(rate * t).
        ratio0 = (phi0 + a) / np.maximum(1.0 - phi0, 1e-12)
        ratio = ratio0 * np.exp(rate * t)
        phi = (ratio - a) / (ratio + 1.0)
        psi = 1.0 - (1.0 - psi0) * np.exp(-t / p.tau_stress)
        return np.clip(phi, 0.0, 1.0), np.clip(psi, 0.0, 1.0)

    # --------------------------------------------------------- discharging

    def discharge(
        self,
        phi0: np.ndarray,
        psi0: np.ndarray,
        t: np.ndarray,
        time_scale: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """State at offsets ``t`` into a constant-drive-OFF segment."""
        p = self.params
        phi0, psi0, t = self._broadcast(phi0, psi0, t, time_scale)
        psi = psi0 * np.exp(-t / p.tau_plateau)
        # Gate-opening instant per pixel: psi(t*) == psi_gate.
        with np.errstate(divide="ignore"):
            t_open = np.where(
                psi0 > p.psi_gate,
                p.tau_plateau * np.log(np.maximum(psi0, 1e-12) / p.psi_gate),
                0.0,
            )
        # Integral of the gated relaxation rate max(0, 1 - psi/psi_gate)
        # from 0 to t.  Before t_open the integrand is zero; after, with
        # u = t - t_open and psi = psi_gate * exp(-u/tau_plateau):
        #   integral = u - tau_plateau * (1 - exp(-u/tau_plateau)).
        u = np.maximum(t - t_open, 0.0)
        gated = u - p.tau_plateau * (1.0 - np.exp(-u / p.tau_plateau))
        # Pixels that start below the gate integrate from their own psi0:
        # rate = 1 - (psi0/psi_gate) exp(-s/tau_plateau) (always positive
        # once psi0 < gate), integral = t - (psi0/psi_gate)*tau_plateau*(1-exp(-t/tau_p)).
        below = psi0 <= p.psi_gate
        gated_below = t - (psi0 / p.psi_gate) * p.tau_plateau * (1.0 - np.exp(-t / p.tau_plateau))
        gated = np.where(below, gated_below, gated)
        exponent = (gated + p.leak * t) / p.tau_discharge
        phi = phi0 * np.exp(-exponent)
        return np.clip(phi, 0.0, 1.0), np.clip(psi, 0.0, 1.0)

    # ------------------------------------------------------------ waveform

    def simulate(
        self,
        drive: np.ndarray,
        tick_s: float,
        fs: float,
        phi0: np.ndarray | float = 0.0,
        psi0: np.ndarray | float = 0.0,
        time_scale: np.ndarray | None = None,
    ) -> np.ndarray:
        """Alignment trajectory ``phi`` for a tick-wise drive schedule.

        Parameters
        ----------
        drive:
            Boolean/0-1 array of shape ``(n_pixels, n_ticks)``; drive is
            constant within each tick of duration ``tick_s``.
        tick_s, fs:
            Tick duration (seconds) and output sample rate (Hz).
        phi0, psi0:
            Initial state, scalar or per-pixel.
        time_scale:
            Optional per-pixel response-speed dilation (see :meth:`charge`).

        Returns
        -------
        ``(n_pixels, n_samples)`` float array of ``phi`` sampled at ``fs``,
        where ``n_samples = round(n_ticks * tick_s * fs)``.
        """
        drive = np.atleast_2d(np.asarray(drive))
        n_pixels, n_ticks = drive.shape
        phi = np.broadcast_to(np.asarray(phi0, dtype=float), (n_pixels,)).copy()
        psi = np.broadcast_to(np.asarray(psi0, dtype=float), (n_pixels,)).copy()
        boundaries = np.round(np.arange(n_ticks + 1) * tick_s * fs).astype(int)
        out = np.empty((n_pixels, boundaries[-1]), dtype=float)
        for j in range(n_ticks):
            lo, hi = boundaries[j], boundaries[j + 1]
            n_here = hi - lo
            # Sample instants inside this tick, then the end-of-tick state.
            t_samples = (np.arange(n_here) + 1.0) / fs
            t_eval = np.concatenate([t_samples, [tick_s]])
            on_phi, on_psi = self.charge(phi, psi, t_eval, time_scale)
            off_phi, off_psi = self.discharge(phi, psi, t_eval, time_scale)
            mask = drive[:, j].astype(bool)[:, None]
            seg_phi = np.where(mask, on_phi, off_phi)
            seg_psi = np.where(mask, on_psi, off_psi)
            out[:, lo:hi] = seg_phi[:, :n_here]
            phi = seg_phi[:, -1]
            psi = seg_psi[:, -1]
        return out

    # --------------------------------------------------------- nonlinearity

    @staticmethod
    def transmit_fraction(phi: np.ndarray) -> np.ndarray:
        """Fraction of the pixel's light leaving at the polarizer angle.

        The Malus-law mixture nonlinearity ``m(phi) = sin^2(phi * pi / 2)``.
        """
        return np.sin(np.asarray(phi) * (np.pi / 2.0)) ** 2

    @classmethod
    def optical_amplitude(cls, phi: np.ndarray) -> np.ndarray:
        """Bipolar amplitude on the pixel's polarization basis.

        ``s = 2 m(phi) - 1 = -cos(pi * phi)``: -1 fully relaxed (light at
        theta_t + 90deg), +1 fully charged (light at theta_t).
        """
        return 2.0 * cls.transmit_fraction(phi) - 1.0

    def pulse_response(self, charge_ticks: int, total_ticks: int, tick_s: float, fs: float) -> np.ndarray:
        """Optical pulse of a single pixel charged for ``charge_ticks`` ticks.

        Convenience used for Fig 3-style plots and unit tests: starts fully
        relaxed, drives ON for ``charge_ticks`` then OFF for the remainder.
        """
        if not 0 < charge_ticks <= total_ticks:
            raise ValueError("need 0 < charge_ticks <= total_ticks")
        drive = np.zeros((1, total_ticks), dtype=np.uint8)
        drive[0, :charge_ticks] = 1
        phi = self.simulate(drive, tick_s, fs)
        return self.optical_amplitude(phi)[0]
