"""Frozen scalar reference for the LC waveform integrator.

This module preserves the original per-tick segment-wise ``simulate`` loop
— evaluating both the charge and discharge closed forms over every sample
of every tick and masking per pixel — exactly as it shipped before the
two-pass vectorized engine replaced it in :mod:`repro.lcm.response`.  It is
the executable specification the vectorized engine is tested against: the
golden-equivalence suite (``tests/lcm/test_response_equivalence.py``) and
the in-run assert of ``benchmarks/bench_txchain_speed.py`` require
agreement to <= 1e-12 max abs error (in practice the engines agree
bitwise, because both evaluate the same elementwise map arithmetic).

Do not optimise this module; optimise ``LCResponseModel.simulate`` against
it.  The only deliberate deviation from the historical loop is the tick
boundary table: both engines share :func:`repro.lcm.response.tick_sample_boundaries`
(the exact-proration fix that bans zero-length sample spans), so the suite
compares *integrators*, not grid rounding.
"""

from __future__ import annotations

import numpy as np

from repro.lcm.response import LCResponseModel, tick_sample_boundaries

__all__ = ["ReferenceLCResponseModel"]


class ReferenceLCResponseModel(LCResponseModel):
    """The original interpreter-style integrator, kept verbatim as a spec."""

    def simulate(
        self,
        drive: np.ndarray,
        tick_s: float,
        fs: float,
        phi0: np.ndarray | float = 0.0,
        psi0: np.ndarray | float = 0.0,
        time_scale: np.ndarray | None = None,
        return_state: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Per-tick reference integration (see module docstring)."""
        drive = np.atleast_2d(np.asarray(drive))
        n_pixels, n_ticks = drive.shape
        phi = np.broadcast_to(np.asarray(phi0, dtype=float), (n_pixels,)).copy()
        psi = np.broadcast_to(np.asarray(psi0, dtype=float), (n_pixels,)).copy()
        boundaries = tick_sample_boundaries(n_ticks, tick_s, fs)
        out = np.empty((n_pixels, boundaries[-1]), dtype=float)
        for j in range(n_ticks):
            lo, hi = boundaries[j], boundaries[j + 1]
            n_here = hi - lo
            # Sample instants inside this tick, then the end-of-tick state.
            t_samples = (np.arange(n_here) + 1.0) / fs
            t_eval = np.concatenate([t_samples, [tick_s]])
            on_phi, on_psi = self.charge(phi, psi, t_eval, time_scale)
            off_phi, off_psi = self.discharge(phi, psi, t_eval, time_scale)
            mask = drive[:, j].astype(bool)[:, None]
            seg_phi = np.where(mask, on_phi, off_phi)
            seg_psi = np.where(mask, on_psi, off_psi)
            out[:, lo:hi] = seg_phi[:, :n_here]
            phi = seg_phi[:, -1]
            psi = seg_psi[:, -1]
        if return_state:
            return out, (phi, psi)
        return out
