"""Flicker analysis: why polarization modulation is invisible to the eye.

Paper §2.1: OOK/PAM's slow intensity keying "introduces the flickering
issue ... which can be solved by polarized light communication [11]".  The
mechanism is structural: an LCM (front polarizer detached) only *rotates*
polarization — the total reflected intensity an unpolarized observer (a
human eye) integrates is constant no matter the drive.  A full LCD shutter
(front polarizer attached) gates intensity itself and flickers at the
symbol rate.

This module renders both observer-side waveforms from a drive schedule and
scores them with the standard lighting metrics (percent flicker and
flicker index), so the claim is measurable rather than asserted.
"""

from __future__ import annotations

import numpy as np

from repro.lcm.array import LCMArray
from repro.lcm.response import LCResponseModel

__all__ = ["flicker_index", "percent_flicker", "perceived_intensity"]


def perceived_intensity(
    array: LCMArray,
    drive: np.ndarray,
    tick_s: float,
    fs: float,
    front_polarizer: bool = False,
) -> np.ndarray:
    """Total intensity an unpolarized observer sees from the tag surface.

    ``front_polarizer=False`` is the RetroTurbo LCM: each pixel reflects
    its full share regardless of LC state (the modulation lives purely in
    polarization) — the waveform is flat.  ``front_polarizer=True`` models
    the original LCD-shutter OOK: the crossed front polarizer converts the
    LC rotation into transmittance ``m(phi)``, which the eye sees.
    """
    drive = np.asarray(drive)
    if drive.shape[0] != array.n_pixels:
        raise ValueError(f"drive has {drive.shape[0]} rows for {array.n_pixels} pixels")
    model = LCResponseModel(array.params)
    phi = model.simulate(
        drive,
        tick_s,
        fs,
        time_scale=np.array([p.time_scale for p in array.pixels]),
    )
    areas = np.array([p.area * p.gain for p in array.pixels])
    total_area = areas.sum()
    if front_polarizer:
        transmit = LCResponseModel.transmit_fraction(phi)
        return (areas[:, None] * transmit).sum(axis=0) / total_area
    # Polarization-only modulation: m + (1 - m) = 1 per pixel, always.
    mixture = LCResponseModel.transmit_fraction(phi)
    per_pixel = mixture + (1.0 - mixture)
    return (areas[:, None] * per_pixel).sum(axis=0) / total_area


def percent_flicker(intensity: np.ndarray) -> float:
    """Percent flicker: ``(max - min) / (max + min)`` (0 = steady light)."""
    intensity = np.asarray(intensity, dtype=float)
    if intensity.size == 0:
        raise ValueError("empty intensity waveform")
    hi, lo = float(intensity.max()), float(intensity.min())
    if hi + lo <= 0:
        return 0.0
    return (hi - lo) / (hi + lo)


def flicker_index(intensity: np.ndarray) -> float:
    """IESNA flicker index: area above the mean over total area (0..1)."""
    intensity = np.asarray(intensity, dtype=float)
    if intensity.size == 0:
        raise ValueError("empty intensity waveform")
    mean = float(intensity.mean())
    if mean <= 0:
        return 0.0
    above = np.clip(intensity - mean, 0.0, None).sum()
    total = intensity.sum()
    return float(above / total) if total > 0 else 0.0
