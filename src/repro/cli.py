"""Command-line interface: simulate links, sweep experiments, analyse
operating points, and size networks without writing Python.

Installed as the ``retroturbo`` console script::

    retroturbo simulate --distance 3.0 --rate 8000 --packets 10
    retroturbo sweep fig16a
    retroturbo scenario list
    retroturbo scenario run drive_by_reader --packets 8
    retroturbo analyze --rate 8000
    retroturbo network --tags 50
    retroturbo materials
"""

from __future__ import annotations

import argparse
import sys


def _print_spans(spans: list[dict], indent: int = 0) -> None:
    for span in spans:
        ms = span["duration_s"] * 1e3
        status = "" if span["status"] == "ok" else f"  [{span['status']}]"
        print(f"{'  ' * indent}{span['name']:<{24 - 2 * min(indent, 8)}} {ms:9.3f} ms{status}")
        _print_spans(span.get("children", []), indent + 1)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import PhyKnobs, ScenarioSpec, Session
    from repro.obs import Observer, SpanProfiler

    spec = ScenarioSpec(
        kind="packet",
        rate_bps=args.rate,
        distance_m=args.distance,
        payload_bytes=args.payload,
        seed=args.seed,
        phy=PhyKnobs(roll_deg=args.roll, yaw_deg=args.yaw),
    )
    profiler = SpanProfiler(targets=("equalize",)) if args.profile else None
    observer = Observer(profiler=profiler)
    report = Session(spec, observer=observer).run(n_packets=args.packets)
    s = report.summary
    print(f"scenario : {spec.describe()}")
    print(f"link     : {s['snr_db']:.1f} dB at {args.distance} m "
          f"(roll {args.roll} deg, yaw {args.yaw} deg)")
    reliable = "reliable" if s["ber"] < 0.01 else "unreliable"
    print(f"BER      : {s['ber']:.4%} over {s['n_packets']} packets "
          f"({reliable} at the 1% bar)")
    print(f"PER      : {s['packet_error_rate']:.1%}   detection {s['detection_rate']:.0%}   "
          f"{len(report.metric_names())} metric series recorded")
    if args.trace:
        print("stage trace:")
        _print_spans(report.spans)
    if args.profile:
        for name, text in report.profiles.items():
            print(f"profile [{name}]:\n{text}")
    if args.metrics_out:
        path = report.write(args.metrics_out)
        print(f"metrics  : RunReport written to {path}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.api import PhyKnobs, ScenarioSpec, Session, StreamKnobs

    spec = ScenarioSpec(
        kind="stream",
        rate_bps=args.rate,
        distance_m=args.distance,
        payload_bytes=args.payload,
        seed=args.seed,
        phy=PhyKnobs(roll_deg=args.roll, yaw_deg=args.yaw),
        stream=StreamKnobs(
            chunk_samples=args.chunk, max_buffered_samples=args.max_buffered
        ),
    )
    session = Session(spec)
    if args.live:
        # Per-packet live view, driven by the same generator run() uses.
        for i, (cap, out) in enumerate(session.stream(n_packets=args.packets)):
            status = "ok " if out.crc_ok else (
                out.failure.code if out.failure is not None else "crc!"
            )
            match = "match" if out.payload == cap.payload else "DIFFERS"
            print(f"packet {i}: {status:<18} offset {out.detection.offset:>5} "
                  f"(lead {cap.offset:>5})  payload {match}")
        report = session.observer.run_report("stream", scenario=spec.describe(), summary={})
    else:
        report = session.run(n_packets=args.packets)
        s = report.summary
        print(f"scenario : {spec.describe()}")
        print(f"BER      : {s['ber']:.4%} over {s['n_packets']} packets "
              f"(crc ok rate {s['crc_ok_rate']:.0%})")
    for entry in sorted(report.metrics.get("series", []), key=lambda e: e["name"]):
        if not entry["name"].startswith("stream."):
            continue
        value = entry.get("value", entry.get("mean"))
        if value is not None:
            print(f"{entry['name']:<30} {value:g}")
    if args.metrics_out:
        path = report.write(args.metrics_out)
        print(f"metrics  : RunReport written to {path}")
    return 0


_SWEEPS = {
    "fig16a": "rate_vs_distance",
    "fig16b": "roll_sweep",
    "fig16c": "yaw_sweep",
    "fig16d": "ambient_sweep",
    "fig18a": "emulated_ber_vs_snr",
    "table4": "mobility_study",
}

#: Figures with a batched-engine harness that accepts journal/shard options.
_GRID_SWEEPS = {
    "fig16a": "rate_vs_distance_grid",
    "fig17a": "dfe_comparison_grid",
    "fig18a": "emulated_ber_vs_snr_batched",
    "table4": "mobility_study_grid",
    "network_scale": "network_scale_grid",
    "trajectory_study": "trajectory_study_grid",
    "polarization_fidelity": "polarization_fidelity_grid",
}


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.api import Session, named_scenario, scenario_catalog_names

    if args.action == "list":
        for name in scenario_catalog_names():
            spec = named_scenario(name)
            traj = spec.trajectory.resolve()
            print(
                f"{name:<24} {traj.duration_s:6.2f} s path, "
                f"payload {spec.payload_bytes} B, "
                f"packet every {spec.trajectory.packet_interval_s:g} s"
            )
        return 0
    # run
    if args.name is None:
        print("scenario run requires a scenario name (see: retroturbo scenario list)")
        return 2
    try:
        spec = named_scenario(args.name)
    except ValueError as exc:
        print(exc)
        return 2
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)
    report = Session(spec).run(n_packets=args.packets)
    s = report.summary
    print(f"scenario : {args.name} ({s['trajectory_duration_s']:.2f} s path)")
    print(f"BER      : {s['ber']:.4%} over {s['n_packets']} packets "
          f"(crc ok rate {s['crc_ok_rate']:.0%})")
    print(f"goodput  : {s['goodput_bps'] / 1000:.3f} kbps over {s['sim_time_s']:.2f} s simulated")
    if args.metrics_out:
        path = report.write(args.metrics_out)
        print(f"metrics  : RunReport written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import repro.experiments as ex
    from repro.obs import Observer, use_observer

    name = args.figure
    durable = args.journal is not None
    if durable:
        if name not in _GRID_SWEEPS:
            print(
                f"--journal/--shard need a batched harness; "
                f"choose from {', '.join(sorted(_GRID_SWEEPS))}"
            )
            return 2
        harness = getattr(ex, _GRID_SWEEPS[name])
        sweep_options = {"max_retries": args.retries}
        if args.timeout is not None:
            sweep_options["timeout_s"] = args.timeout
        out = harness(
            n_workers=args.workers,
            journal=args.journal,
            shard=args.shard,
            sweep=sweep_options,
            metrics_out=args.metrics_out,
        )
        state = ex.read_journal(args.journal)
        print(
            f"journal  : {args.journal}  "
            f"{len(state.tasks)} task(s) done, {len(state.quarantined)} quarantined"
            + (f"  [shard {args.shard}]" if args.shard else "")
        )
        if args.metrics_out:
            print(f"RunReport written to {args.metrics_out}")
    elif args.shard is not None or args.workers != 1:
        print("--shard/--workers require --journal (a durable sweep)")
        return 2
    else:
        if name not in _SWEEPS:
            print(f"{name} is only available as a batched sweep; pass --journal PATH")
            return 2
        harness = getattr(ex, _SWEEPS[name])
        if args.metrics_out:
            # The harnesses build their simulators through the ambient
            # observer, so wrapping the call is all the plumbing needed.
            with use_observer(Observer(trace=False)) as obs:
                out = harness()
            obs.run_report("sweep", scenario={"figure": name}).write(args.metrics_out)
            print(f"RunReport written to {args.metrics_out}")
        else:
            out = harness()
    if isinstance(out, dict):
        for key, points in out.items():
            if isinstance(points, list) and points and isinstance(points[0], dict):
                if "goodput_bps" in points[0]:
                    # Fleet-scale rows: n_tags -> goodput (orphans flagged).
                    series = " ".join(
                        f"{r['x']:g}:{r['goodput_bps'] / 1000:.2f}kbps"
                        + (f"[{r['orphaned_tags']} orphaned!]" if r.get("orphaned_tags") else "")
                        for r in points
                    )
                else:
                    # Polarization-fidelity rows: extinction -> rms divergence.
                    series = " ".join(
                        f"{r['x']:g}:{r['rms_error']:.4f}" for r in points
                    )
                print(f"{key}: {series}")
            elif hasattr(points, "__iter__") and not hasattr(points, "ber"):
                series = " ".join(f"{p.x:g}:{p.ber:.4f}" for p in points)
                print(f"{key}: {series}")
            else:
                print(f"{key}: x={points.x:g} ber={points.ber:.4f}")
    else:
        print(out)
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import JournalError, merge_journals, read_journal

    if args.action == "status":
        for path in args.paths:
            try:
                state = read_journal(path)
            except (OSError, JournalError) as exc:
                print(f"{path}: unreadable ({exc})")
                return 1
            torn = "  [torn final line]" if state.truncated else ""
            print(
                f"{path}: {len(state.tasks)} task(s), "
                f"{len(state.quarantined)} quarantined, "
                f"{len(state.headers)} session(s){torn}"
            )
            for record in sorted(state.quarantined.values(), key=lambda r: r["index"]):
                reason = record["reason"]
                print(
                    f"  quarantined #{record['index']} {record['scheme']}/{record['x']:g}: "
                    f"{reason['stage']}:{reason['code']} after {record['attempts']} attempt(s)"
                )
        return 0
    # merge
    if not args.output:
        print("journal merge requires --output PATH")
        return 2
    try:
        merged = merge_journals(args.paths, output=args.output)
    except (OSError, JournalError) as exc:
        print(f"merge failed: {exc}")
        return 1
    print(
        f"merged {len(args.paths)} journal(s) -> {args.output}: "
        f"{len(merged.tasks)} task(s), {len(merged.quarantined)} quarantined"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.optimizer import candidate_configs, threshold_map

    candidates = candidate_configs(args.rate)
    if not candidates:
        print(f"no feasible (L, P, T) operating point at {args.rate} bps")
        return 1
    points = threshold_map(args.rate, n_contexts=args.contexts, rng=args.seed)
    best = max(points, key=lambda p: p.distance)
    for p in sorted(points, key=lambda q: -q.distance):
        marker = " <- optimal" if p is best else ""
        print(f"L={p.config.dsm_order:>3} P={p.config.pqam_order:>4} "
              f"T={p.config.slot_s * 1e3:g} ms  D={p.distance:.3e}{marker}")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.mac.network import NetworkSimulator

    sim = NetworkSimulator()
    result = sim.run(args.tags, rng=args.seed)
    print(f"{args.tags} tags: adaptive {result.adaptive_throughput_bps / 1000:.2f} kbps, "
          f"baseline {result.baseline_throughput_bps / 1000:.2f} kbps "
          f"-> gain {result.gain:.2f}x "
          f"(discovery used {result.discovery_slots} slots)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.faults.network import network_scenario
    from repro.network import FleetConfig, FleetSimulator

    config = FleetConfig(
        n_readers=args.readers, n_tags=args.tags, duration_s=args.duration
    )
    plan = None
    if args.scenario != "none":
        plan = network_scenario(args.scenario, config.duration_s)
    result = FleetSimulator(config, fault_plan=plan, root_seed=args.seed).run()
    row = result.row()
    chaos = f"  [chaos: {args.scenario}]" if plan is not None else ""
    print(f"fleet    : {args.readers} readers x {args.tags} tags, "
          f"{args.duration:g} s{chaos}")
    print(f"goodput  : {row['goodput_bps'] / 1000:.2f} kbps  "
          f"({row['delivered']} delivered, {row['abandoned']} abandoned, "
          f"{row['attempts']} attempts)")
    print(f"handoffs : {row['handoffs']} "
          f"(mean latency {row['handoff_latency_mean_s']:.2f} s), "
          f"{row['detaches']} detach(es), {row['transitions']} health transition(s)")
    print(f"shedding : {row['shed_associations']} association(s), "
          f"{row['shed_discovery']} discovery request(s)")
    violation = result.check_contract()
    if violation is not None:
        print(f"contract : VIOLATED - {violation}")
        return 1
    print(f"contract : ok - zero orphaned tags "
          f"({row['unassociated_tags']} unassociated at end)")
    return 0


def _cmd_materials(args: argparse.Namespace) -> int:
    from repro.lcm.response import LCParams
    from repro.modem.config import ModemConfig

    base = ModemConfig()
    rows = [
        ("COTS TN shutter", 1.0, "the prototype"),
        ("ferroelectric LC", 20e-6 / 3.5e-3, "paper ref [15], ~20 us restore"),
        ("CCN-47", 30e-9 / 3.5e-3, "paper ref [14], ~30 ns (optical limit)"),
    ]
    print(f"{'material':<18} {'slot T':>12} {'raw rate':>12}  note")
    for name, scale, note in rows:
        cfg = base.scaled_to_material(scale)
        rate = cfg.rate_bps
        unit = f"{rate / 1e6:.2f} Mbps" if rate >= 1e6 else f"{rate / 1e3:.0f} Kbps"
        print(f"{name:<18} {cfg.slot_s * 1e6:>9.2f} us {unit:>12}  {note}")
    # Touch the params constructors so the table stays honest.
    LCParams.cots_tn(), LCParams.ferroelectric(), LCParams.ccn47()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ReportScale, generate_report

    scale = ReportScale.full() if args.full else ReportScale.quick()
    generate_report(path=args.output, scale=scale)
    print(f"report written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="retroturbo",
        description="RetroTurbo VLBC reproduction - simulation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run packets over one link")
    p.add_argument("--distance", type=float, default=3.0)
    p.add_argument("--rate", type=int, default=8000)
    p.add_argument("--roll", type=float, default=0.0, help="degrees")
    p.add_argument("--yaw", type=float, default=0.0, help="degrees")
    p.add_argument("--packets", type=int, default=5)
    p.add_argument("--payload", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trace", action="store_true", help="print the per-stage span tree")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the DFE hot path (equalize span)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's RunReport JSON here")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("stream", help="decode packets through the chunked streaming receiver")
    p.add_argument("--distance", type=float, default=3.0)
    p.add_argument("--rate", type=int, default=8000)
    p.add_argument("--roll", type=float, default=0.0, help="degrees")
    p.add_argument("--yaw", type=float, default=0.0, help="degrees")
    p.add_argument("--packets", type=int, default=5)
    p.add_argument("--payload", type=int, default=32)
    p.add_argument("--chunk", type=int, default=256, metavar="SAMPLES",
                   help="samples per pushed chunk (default 256)")
    p.add_argument("--max-buffered", type=int, default=None, metavar="SAMPLES",
                   help="backpressure bound; captures exceeding it are dropped")
    p.add_argument("--live", action="store_true",
                   help="print each packet as it decodes instead of a summary")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's RunReport JSON here")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("sweep", help="run a paper-figure sweep")
    p.add_argument("figure", choices=sorted(set(_SWEEPS) | set(_GRID_SWEEPS)))
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write a sweep-wide RunReport JSON here")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="crash-safe JSONL journal; rerun with the same path to resume")
    p.add_argument("--shard", default=None, metavar="I/N",
                   help="own only the index-derived grid slice index %% N == I")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for pending tasks (requires --journal)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-task wall-clock budget in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="bounded retries for retryable task failures (default 2)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("scenario", help="list or run the trajectory scenario catalog")
    p.add_argument("action", choices=["list", "run"])
    p.add_argument("name", nargs="?", default=None,
                   help="catalog scenario name (run only)")
    p.add_argument("--packets", type=int, default=8)
    p.add_argument("--seed", type=int, default=None,
                   help="override the scenario's pinned seed")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's RunReport JSON here")
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser("journal", help="inspect or merge sweep journals")
    p.add_argument("action", choices=["status", "merge"])
    p.add_argument("paths", nargs="+", metavar="JOURNAL")
    p.add_argument("--output", "-o", default=None, metavar="PATH",
                   help="merged journal destination (merge only)")
    p.set_defaults(func=_cmd_journal)

    p = sub.add_parser("analyze", help="optimal (L, P) search at a rate")
    p.add_argument("--rate", type=int, default=8000)
    p.add_argument("--contexts", type=int, default=2)
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("network", help="rate-adaptive MAC gain for N tags")
    p.add_argument("--tags", type=int, default=20)
    p.add_argument("--seed", type=int, default=5)
    p.set_defaults(func=_cmd_network)

    p = sub.add_parser("fleet", help="multi-reader fleet sim under chaos")
    from repro.faults.network import network_scenario_names

    p.add_argument("--readers", type=int, default=3)
    p.add_argument("--tags", type=int, default=12)
    p.add_argument("--duration", type=float, default=30.0, metavar="S")
    p.add_argument("--scenario", default="none",
                   choices=["none", *network_scenario_names()],
                   help="named network chaos scenario (default: no faults)")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("materials", help="rate ladder across LC materials")
    p.set_defaults(func=_cmd_materials)

    p = sub.add_parser("report", help="regenerate the full reproduction report")
    p.add_argument("--output", default="REPORT.md")
    p.add_argument("--full", action="store_true", help="benchmark-scale workloads")
    p.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
