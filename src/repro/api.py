"""The unified run API: one validated spec, one entry point, one artifact.

Before this module the library had four scattered ways to run an
experiment — ``PacketSimulator.run_packet``, ``MobileLinkSimulator.
run_packet``, ``StopAndWaitARQ.simulate`` and ``LinkWatchdog.simulate`` —
plus the ``make_simulator(**kwargs)`` factory that silently forwarded any
typo'd keyword.  They are now deprecated shims over this facade::

    from repro import ScenarioSpec, Session

    spec = ScenarioSpec(kind="packet", distance_m=3.0, rate_bps=8000)
    report = Session(spec).run(n_packets=10)
    print(report.summary["ber"], sorted(report.metric_names()))
    report.write("run.json")            # schema-validated RunReport

* :class:`ScenarioSpec` is a frozen dataclass that validates every field
  at construction (unknown keywords are a ``TypeError``, out-of-range
  values a ``ValueError``) and renders itself with :meth:`ScenarioSpec.
  describe` — that dict becomes the report's ``scenario`` section.
* :class:`Session` owns an :class:`~repro.obs.Observer` (metrics +
  span tracing + optional profiling), installs it as the ambient observer
  for the run, and returns a :class:`~repro.obs.RunReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.obs import Observer, RunReport, ensure_observer, use_observer
from repro.utils.rng import ensure_rng

__all__ = ["SCENARIO_KINDS", "ScenarioSpec", "Session"]

#: Scenario families the facade can run (each maps to one harness).
SCENARIO_KINDS = ("packet", "mobility", "arq", "watchdog", "stream")

_BANK_MODES = ("trained", "nominal")


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated, self-describing experimental condition.

    Common fields apply to the PHY kinds (``packet``, ``mobility``);
    ``success_probability`` / ``max_attempts`` / ``fail_threshold`` drive
    the analytic MAC kinds (``arq``, ``watchdog``).  Anything the spec
    does not name is rejected at construction — there is no silent
    keyword passthrough.
    """

    kind: str = "packet"
    rate_bps: float = 8000.0
    distance_m: float = 2.0
    roll_deg: float = 0.0
    yaw_deg: float = 0.0
    payload_bytes: int = 24
    bank_mode: str = "trained"
    k_branches: int = 16
    ambient: str | None = None
    seed: int = 7
    # mobility-only knobs
    roll_rate_deg_s: float = 0.0
    sync_interval_slots: int = 64
    resync: bool = True
    # arq / watchdog-only knobs
    success_probability: float | None = None
    max_attempts: int = 8
    fail_threshold: int = 3
    # stream-only knobs
    chunk_samples: int = 256
    max_buffered_samples: int | None = None

    def __post_init__(self):
        problems = []
        if self.kind not in SCENARIO_KINDS:
            problems.append(f"kind {self.kind!r} not in {SCENARIO_KINDS}")
        if self.rate_bps <= 0:
            problems.append("rate_bps must be positive")
        if self.distance_m <= 0:
            problems.append("distance_m must be positive")
        if self.payload_bytes < 1:
            problems.append("payload_bytes must be >= 1")
        if self.bank_mode not in _BANK_MODES:
            problems.append(f"bank_mode {self.bank_mode!r} not in {_BANK_MODES}")
        if self.k_branches < 1:
            problems.append("k_branches must be >= 1")
        if self.ambient is not None:
            from repro.optics.ambient import AMBIENT_PRESETS

            if self.ambient not in AMBIENT_PRESETS:
                problems.append(
                    f"ambient {self.ambient!r} not in {sorted(AMBIENT_PRESETS)}"
                )
        if self.sync_interval_slots < 1:
            problems.append("sync_interval_slots must be >= 1")
        if self.success_probability is not None and not (
            0.0 <= self.success_probability <= 1.0
        ):
            problems.append("success_probability must be in [0, 1]")
        if self.kind in ("arq", "watchdog") and self.success_probability is None:
            problems.append(f"kind={self.kind!r} requires success_probability")
        if self.max_attempts < 1:
            problems.append("max_attempts must be >= 1")
        if self.fail_threshold < 1:
            problems.append("fail_threshold must be >= 1")
        if self.chunk_samples < 1:
            problems.append("chunk_samples must be >= 1")
        if self.max_buffered_samples is not None and self.max_buffered_samples < 1:
            problems.append("max_buffered_samples must be >= 1 (or None)")
        if problems:
            raise ValueError("invalid ScenarioSpec: " + "; ".join(problems))

    # ------------------------------------------------------------ describe

    def describe(self) -> dict:
        """The spec as a JSON-ready dict (the report's ``scenario`` block).

        Only the fields that matter for :attr:`kind` are included, so two
        specs describing the same physical condition render identically.
        """
        base = {"kind": self.kind, "seed": self.seed}
        if self.kind in ("packet", "mobility", "stream"):
            base.update(
                rate_bps=self.rate_bps,
                distance_m=self.distance_m,
                payload_bytes=self.payload_bytes,
                k_branches=self.k_branches,
            )
        if self.kind in ("packet", "stream"):
            base.update(
                roll_deg=self.roll_deg,
                yaw_deg=self.yaw_deg,
                bank_mode=self.bank_mode,
                ambient=self.ambient,
            )
        if self.kind == "stream":
            base.update(
                chunk_samples=self.chunk_samples,
                max_buffered_samples=self.max_buffered_samples,
            )
        if self.kind == "mobility":
            base.update(
                roll_rate_deg_s=self.roll_rate_deg_s,
                sync_interval_slots=self.sync_interval_slots,
                resync=self.resync,
            )
        if self.kind in ("arq", "watchdog"):
            base.update(
                success_probability=self.success_probability,
                max_attempts=self.max_attempts,
            )
        if self.kind == "watchdog":
            base["fail_threshold"] = self.fail_threshold
        return base

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with fields changed (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return ScenarioSpec(**current)

    # --------------------------------------------------------------- build

    def build(self, observer=None):
        """The underlying harness object for this spec's kind."""
        observer = ensure_observer(observer)
        if self.kind in ("packet", "stream"):
            from repro.experiments.common import _make_simulator
            from repro.optics.ambient import AMBIENT_PRESETS

            return _make_simulator(
                rate_bps=self.rate_bps,
                distance_m=self.distance_m,
                roll_deg=self.roll_deg,
                yaw_deg=self.yaw_deg,
                ambient=AMBIENT_PRESETS[self.ambient] if self.ambient else None,
                payload_bytes=self.payload_bytes,
                bank_mode=self.bank_mode,
                k_branches=self.k_branches,
                rng=self.seed,
                observer=observer,
            )
        if self.kind == "mobility":
            from repro.channel.dynamics import ChannelDrift
            from repro.experiments.mobility import MobileLinkSimulator

            return MobileLinkSimulator(
                distance_m=self.distance_m,
                drift=ChannelDrift(
                    roll_rate_rad_s=float(np.deg2rad(self.roll_rate_deg_s))
                ),
                payload_bytes=self.payload_bytes,
                sync_interval_slots=self.sync_interval_slots,
                resync=self.resync,
                k_branches=self.k_branches,
                rng=self.seed,
                observer=observer,
            )
        if self.kind == "arq":
            from repro.mac.arq import StopAndWaitARQ

            return StopAndWaitARQ(max_attempts=self.max_attempts)
        # watchdog
        from repro.mac.watchdog import LinkWatchdog

        return LinkWatchdog(fail_threshold=self.fail_threshold, observer=observer)


class Session:
    """One observed run of a :class:`ScenarioSpec`.

    The session installs its observer as the *ambient* observer for the
    duration of :meth:`run`, so every instrumented layer underneath —
    receiver stages, DFE, training solves, MAC outcomes — records into
    the same registry and span forest, which :meth:`run` returns as a
    :class:`~repro.obs.RunReport`.
    """

    def __init__(self, spec: ScenarioSpec, observer: Observer | None = None):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"Session needs a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self.observer = observer if observer is not None else Observer()
        if not self.observer.enabled:
            raise ValueError("Session requires an enabled Observer (it emits a RunReport)")

    def run(self, n_packets: int = 4, rng=None) -> RunReport:
        """Run ``n_packets`` packets (frames, for the MAC kinds).

        Returns the :class:`~repro.obs.RunReport`; write it with
        ``report.write(path)`` or inspect ``report.summary`` directly.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        obs = self.observer
        runner = getattr(self, f"_run_{self.spec.kind}")
        with use_observer(obs):
            with obs.span("session", kind=self.spec.kind, n_packets=n_packets):
                summary = runner(n_packets, rng)
        return obs.run_report(self.spec.kind, scenario=self.spec.describe(), summary=summary)

    def stream(self, n_packets: int = 4, rng=None, chunk_samples: int | None = None):
        """Generator over live streaming decodes (``kind="stream"`` only).

        Synthesizes ``n_packets`` captures through the spec's link, feeds
        each to a :class:`~repro.phy.streaming.StreamingReceiver` in
        ``chunk_samples``-sized chunks, and yields ``(capture, output)``
        pairs — the :class:`~repro.phy.pipeline.CaptureSpec` (ground
        truth: sent payload, true offset) alongside each
        :class:`~repro.phy.receiver.ReceiverOutput` as it is emitted.
        The session observer is ambient for the duration, so
        ``stream.*`` gauges and the usual ``phy.*`` metrics accumulate in
        its registry; call :meth:`run` instead for a summarised report.
        """
        if self.spec.kind != "stream":
            raise ValueError(f"Session.stream() needs kind='stream', got {self.spec.kind!r}")
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        size = self.spec.chunk_samples if chunk_samples is None else int(chunk_samples)
        if size < 1:
            raise ValueError("chunk_samples must be >= 1")
        obs = self.observer
        with use_observer(obs):
            sim = self.spec.build(obs)
            gen = ensure_rng(self.spec.seed + 1 if rng is None else rng)
            for _ in range(n_packets):
                cap = sim.make_capture(rng=gen)
                rx = sim.make_streaming_receiver(
                    search_stop=cap.search_stop,
                    max_buffered_samples=self.spec.max_buffered_samples,
                    observer=obs,
                )
                for lo in range(0, cap.samples.size, size):
                    for out in rx.push(cap.samples[lo : lo + size]):
                        yield cap, out
                for out in rx.close():
                    yield cap, out

    # ------------------------------------------------------- kind runners

    def _run_stream(self, n_packets: int, rng) -> dict:
        from repro.utils.bits import bit_errors, bytes_to_bits

        outputs = []
        errors = bits = 0
        for cap, out in self.stream(n_packets=n_packets, rng=rng):
            outputs.append(out)
            sent = bytes_to_bits(cap.payload)
            if out.crc_ok and out.payload:
                errors += int(bit_errors(sent, bytes_to_bits(out.payload)))
            else:
                errors += sent.size
            bits += sent.size
        n_ok = sum(1 for out in outputs if out.crc_ok)
        return {
            "ber": errors / bits if bits else 0.0,
            "crc_ok_rate": n_ok / len(outputs) if outputs else 0.0,
            "n_packets": len(outputs),
            "n_bits": bits,
            "chunk_samples": self.spec.chunk_samples,
        }

    def _run_packet(self, n_packets: int, rng) -> dict:
        sim = self.spec.build(self.observer)
        m = sim.measure_ber(
            n_packets=n_packets, rng=self.spec.seed + 1 if rng is None else rng
        )
        return {
            "ber": m.ber,
            "packet_error_rate": m.packet_error_rate,
            "detection_rate": m.detection_rate,
            "n_packets": m.n_packets,
            "n_bits": m.n_bits,
            "snr_db": sim.link.effective_snr_db(),
        }

    def _run_mobility(self, n_packets: int, rng) -> dict:
        sim = self.spec.build(self.observer)
        gen = ensure_rng(self.spec.seed + 1 if rng is None else rng)
        bers, crcs = zip(*(sim._run_packet(rng=gen) for _ in range(n_packets)))
        return {
            "ber": float(np.mean(bers)),
            "crc_ok_rate": float(np.mean(crcs)),
            "n_packets": n_packets,
        }

    def _run_arq(self, n_frames: int, rng) -> dict:
        arq = self.spec.build(self.observer)
        stats = arq._simulate(
            self.spec.success_probability,
            n_frames,
            rng=self.spec.seed if rng is None else rng,
        )
        return {
            "delivered": stats.delivered,
            "gave_up": stats.gave_up,
            "attempts": stats.attempts,
            "mean_attempts": stats.mean_attempts,
            "efficiency": stats.efficiency(),
            "expected_attempts": arq.expected_attempts(self.spec.success_probability),
        }

    def _run_watchdog(self, n_frames: int, rng) -> dict:
        from repro.mac.arq import StopAndWaitARQ

        dog = self.spec.build(self.observer)
        stats = dog._simulate(
            lambda rate: self.spec.success_probability,
            n_frames,
            arq=StopAndWaitARQ(max_attempts=self.spec.max_attempts),
            rng=self.spec.seed if rng is None else rng,
        )
        return {
            "delivered": stats.delivered,
            "gave_up": stats.gave_up,
            "attempts": stats.attempts,
            "total_backoff_s": stats.total_backoff_s,
            "final_rate_bps": stats.final_rate_bps,
        }
