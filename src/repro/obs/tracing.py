"""Span-based stage tracing with monotonic timing and parent/child nesting.

A :class:`Span` is a context manager::

    with tracer.span("equalize", n_symbols=96) as span:
        ...
        span.annotate(branches=16)

Entering a span pushes it on the tracer's stack, so spans opened inside it
become its children — the receiver's ``preamble`` / ``rotation`` /
``training`` / ``equalize`` / ``decode`` stages nest naturally under the
per-packet span without any explicit threading.  Timing uses
``time.perf_counter`` (monotonic); ``t_start_s`` is relative to the
tracer's creation so span trees are self-consistent within one run.

Spans subsume the receiver's ad-hoc ``StageEvent`` audit trail: a stage
records its outcome on its span (``set_status("fallback", detail)``), and
the exporter serialises the whole tree.  An exception propagating out of a
span marks it ``status="error"`` (and is re-raised).

The disabled path is :data:`NULL_TRACER` / :data:`NULL_SPAN` — a single
reusable no-op span object, so a disabled ``with obs.span(...)`` costs two
constant-time method calls and no allocation.
"""

from __future__ import annotations

import time

__all__ = ["NULL_SPAN", "NULL_TRACER", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed stage; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "status",
        "detail",
        "attributes",
        "children",
        "t_start_s",
        "duration_s",
        "_tracer",
        "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict | None = None):
        self.name = name
        self.status = "ok"
        self.detail = ""
        self.attributes = attributes or {}
        self.children: list[Span] = []
        self.t_start_s = 0.0
        self.duration_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._t0 = time.perf_counter()
        self.t_start_s = self._t0 - self._tracer._t_ref
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.detail = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False

    # ------------------------------------------------------------ recording

    def annotate(self, **attributes) -> None:
        """Attach key/value context to the span."""
        self.attributes.update(attributes)

    def set_status(self, status: str, detail: str = "") -> None:
        """Record the stage outcome (``ok``/``retried``/``fallback``/``failed``)."""
        self.status = status
        if detail:
            self.detail = detail

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "status": self.status,
            "t_start_s": self.t_start_s,
            "duration_s": self.duration_s,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.attributes:
            out["attributes"] = {str(k): v for k, v in self.attributes.items()}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects a forest of spans for one run (single-threaded by design).

    Process-pool workers each build their own tracer; only metric snapshots
    cross process boundaries (span trees stay with the worker that made
    them), which keeps the merge story trivial.
    """

    enabled = True

    def __init__(self):
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._t_ref = time.perf_counter()

    def span(self, name: str, **attributes) -> Span:
        """Create a span; attach it on ``__enter__``."""
        return Span(self, name, attributes or None)

    # ----------------------------------------------------------- internals

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate a mismatched pop (a span __exit__ skipped by a hard
        # failure elsewhere) by unwinding to the span being closed.
        while self._stack:
            if self._stack.pop() is span:
                break

    # -------------------------------------------------------------- access

    @property
    def depth(self) -> int:
        return len(self._stack)

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.roots]

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


class _NullSpan:
    """Reusable no-op span: context manager + recording verbs, zero state."""

    __slots__ = ()
    name = ""
    status = "ok"
    detail = ""
    children: tuple = ()
    duration_s = 0.0
    t_start_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **attributes):
        pass

    def set_status(self, status, detail=""):
        pass

    def to_dict(self):
        return {}


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: hands out the shared no-op span."""

    enabled = False
    roots: tuple = ()

    def span(self, name: str, **attributes):
        return NULL_SPAN

    @property
    def depth(self) -> int:
        return 0

    def to_dicts(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
