"""Opt-in profiling hooks: cProfile capture scoped to named spans.

Span timing itself is always on (``perf_counter`` in :mod:`.tracing`); this
module adds the heavyweight option — a deterministic :mod:`cProfile`
capture around chosen spans (by default the DFE hot path, the ``equalize``
stage).  It is strictly opt-in: a :class:`SpanProfiler` only exists when a
caller asked for one, so the disabled cost is an attribute-is-None check.

cProfile cannot nest, so if a targeted span opens inside another targeted
span the inner capture is skipped (the outer one already covers it).
Reports are rendered to bounded ``pstats`` text (top-N by cumulative time)
so they can ride along inside a JSON :class:`~repro.obs.export.RunReport`.
"""

from __future__ import annotations

import cProfile
import io
import pstats

__all__ = ["SpanProfiler"]


class SpanProfiler:
    """Capture cProfile stats for spans whose name is in ``targets``.

    Parameters
    ----------
    targets:
        Span names to profile (default: the DFE hot path, ``equalize``).
    top:
        Rows of the rendered ``pstats`` table to keep per span name.
    """

    def __init__(self, targets: tuple[str, ...] = ("equalize",), top: int = 25):
        self.targets = frozenset(targets)
        self.top = int(top)
        self.reports: dict[str, str] = {}
        self.capture_counts: dict[str, int] = {}
        self._active = False

    def wants(self, name: str) -> bool:
        return name in self.targets and not self._active

    # ------------------------------------------------------------- capture

    def start(self, name: str) -> cProfile.Profile | None:
        if not self.wants(name):
            return None
        self._active = True
        profile = cProfile.Profile()
        profile.enable()
        return profile

    def stop(self, name: str, profile: cProfile.Profile | None) -> None:
        if profile is None:
            return
        profile.disable()
        self._active = False
        self.capture_counts[name] = self.capture_counts.get(name, 0) + 1
        self.reports[name] = self._render(profile)

    def _render(self, profile: cProfile.Profile) -> str:
        buf = io.StringIO()
        stats = pstats.Stats(profile, stream=buf)
        stats.sort_stats("cumulative").print_stats(self.top)
        return buf.getvalue()


class ProfiledSpan:
    """A span wrapper that brackets the span body with a cProfile capture."""

    __slots__ = ("_span", "_profiler", "_name", "_profile")

    def __init__(self, span, profiler: SpanProfiler, name: str):
        self._span = span
        self._profiler = profiler
        self._name = name
        self._profile = None

    def __enter__(self):
        span = self._span.__enter__()
        self._profile = self._profiler.start(self._name)
        return span

    def __exit__(self, exc_type, exc, tb):
        self._profiler.stop(self._name, self._profile)
        return self._span.__exit__(exc_type, exc, tb)
