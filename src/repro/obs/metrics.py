"""Metric primitives: labeled counters, gauges and histograms.

The registry is deliberately tiny — a flat ``(name, labels) -> series`` map
with three write verbs — because every layer of the stack records into it
from hot-ish code.  Design rules:

* **One kind per name.**  Recording ``count()`` and ``observe()`` against
  the same series name is a programming error and raises immediately.
* **Labels are cheap.**  A label set is a sorted tuple of ``(key, str)``
  pairs; series identity is ``(name, labels)``.
* **Histograms are moment sketches**, not bucketed: ``count / total /
  min / max / sum of squares`` is enough for the mean/std/extremes the
  reports need, merges exactly across process-pool workers, and costs a
  few float adds per observation.
* **Merging is lossless** for counters and histograms (plain sums).  For
  gauges the *last merged* value wins and min/max/count accumulate — the
  right semantics for "same quantity observed by many workers".

The disabled path is :data:`NULL_METRICS`, a no-op singleton whose verbs
are empty methods — the overhead budget (DESIGN.md §9) is enforced by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "METRIC_KINDS",
    "MetricSeries",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
]

METRIC_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (values coerced to str)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class MetricSeries:
    """One labeled time-series aggregate.

    ``value`` is the running sum for counters and the last-set value for
    gauges; histograms aggregate into ``count/total/sq_total/min/max``.
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...] = ()
    count: int = 0
    value: float = 0.0
    total: float = 0.0
    sq_total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    # ------------------------------------------------------------ recording

    def record(self, v: float) -> None:
        v = float(v)
        self.count += 1
        if self.kind == "counter":
            self.value += v
            return
        self.value = v
        self.total += v
        self.sq_total += v * v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    # ----------------------------------------------------------- aggregates

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def std(self) -> float:
        if not self.count:
            return float("nan")
        var = self.sq_total / self.count - self.mean**2
        return math.sqrt(max(var, 0.0))

    # -------------------------------------------------------------- merging

    def merge(self, other: "MetricSeries") -> None:
        """Fold another series (same identity) into this one."""
        if (other.name, other.kind, other.labels) != (self.name, self.kind, self.labels):
            raise ValueError(
                f"cannot merge series {other.name}/{other.kind}{other.labels} "
                f"into {self.name}/{self.kind}{self.labels}"
            )
        self.count += other.count
        if self.kind == "counter":
            self.value += other.value
            return
        if other.count:
            self.value = other.value  # last-merged gauge wins
        self.total += other.total
        self.sq_total += other.sq_total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # ------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "kind": self.kind, "labels": dict(self.labels)}
        out["count"] = self.count
        if self.kind == "counter":
            out["value"] = self.value
            return out
        if self.kind == "gauge":
            out["value"] = self.value
        out.update(
            total=self.total,
            sq_total=self.sq_total,
            min=self.min if self.count else None,
            max=self.max if self.count else None,
            mean=self.mean if self.count else None,
        )
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "MetricSeries":
        s = cls(name=d["name"], kind=d["kind"], labels=_label_key(d.get("labels", {})))
        s.count = int(d.get("count", 0))
        s.value = float(d.get("value", 0.0))
        s.total = float(d.get("total", 0.0))
        s.sq_total = float(d.get("sq_total", 0.0))
        s.min = math.inf if d.get("min") is None else float(d["min"])
        s.max = -math.inf if d.get("max") is None else float(d["max"])
        return s


@dataclass
class MetricsRegistry:
    """Flat registry of :class:`MetricSeries`, keyed by (name, labels)."""

    enabled: bool = True
    _series: dict[tuple, MetricSeries] = field(default_factory=dict, repr=False)

    # ---------------------------------------------------------- write verbs

    def _get(self, name: str, kind: str, labels: dict) -> MetricSeries:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = MetricSeries(name=name, kind=kind, labels=key[1])
            self._series[key] = series
        elif series.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {series.kind!r}, not {kind!r}"
            )
        return series

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment a monotonic counter."""
        self._get(name, "counter", labels).record(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time value (last write wins)."""
        self._get(name, "gauge", labels).record(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into a histogram series."""
        self._get(name, "histogram", labels).record(value)

    # --------------------------------------------------------------- access

    def get(self, name: str, **labels) -> MetricSeries | None:
        return self._series.get((name, _label_key(labels)))

    def series(self, name: str | None = None) -> list[MetricSeries]:
        if name is None:
            return list(self._series.values())
        return [s for s in self._series.values() if s.name == name]

    def names(self) -> set[str]:
        """Distinct series names (labels collapsed)."""
        return {s.name for s in self._series.values()}

    def __len__(self) -> int:
        return len(self._series)

    def clear(self) -> None:
        self._series.clear()

    # -------------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (pool-worker join)."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. shipped from a pool worker)."""
        for entry in snapshot.get("series", []):
            incoming = MetricSeries.from_dict(entry)
            key = (incoming.name, incoming.labels)
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = incoming
            else:
                mine.merge(incoming)

    # ------------------------------------------------------- serialisation

    def snapshot(self) -> dict:
        """JSON-able dump of every series (stable ordering)."""
        entries = sorted(self._series.values(), key=lambda s: (s.name, s.labels))
        return {"series": [s.to_dict() for s in entries]}

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge_snapshot(snapshot)
        return reg


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: every verb is a no-op, every read is empty.

    A process-wide singleton (:data:`NULL_METRICS`); instrumented code may
    call its verbs unconditionally without measurable cost.
    """

    def __init__(self):
        super().__init__(enabled=False)

    def count(self, name, value=1.0, **labels):  # noqa: D102 - no-op
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, **labels):
        pass

    def merge_snapshot(self, snapshot):
        raise TypeError("NULL_METRICS is immutable; merge into a real MetricsRegistry")


NULL_METRICS = NullMetricsRegistry()
