"""RunReport assembly, JSON/JSONL export, and schema validation.

A :class:`RunReport` is the one artifact every harness emits — the unified
``Session`` facade, the batched figure sweeps, the MAC session/watchdog
simulations and the ``retroturbo`` CLI all converge on this structure::

    {
      "meta":     {"schema_version": 1, "generator": "...", "kind": "..."},
      "scenario": {...},            # ScenarioSpec.describe() or harness params
      "summary":  {...},            # headline aggregates (ber, per, ...)
      "metrics":  {"series": [...]},# MetricsRegistry.snapshot()
      "spans":    [...],            # nested span dicts (may be empty)
      "profiles": {"equalize": "...pstats text..."}
    }

``validate_run_report`` is the golden schema the test suite pins: a
hand-rolled structural check (no external jsonschema dependency) that
raises :class:`ReportSchemaError` listing *every* violation, so a report
that drifts fails loudly in CI rather than silently in a dashboard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import METRIC_KINDS

__all__ = [
    "RUN_REPORT_SCHEMA_VERSION",
    "ReportSchemaError",
    "RunReport",
    "load_run_report",
    "validate_run_report",
    "write_jsonl",
]

RUN_REPORT_SCHEMA_VERSION = 1

#: Report kinds the schema admits (one per emitting harness family).
REPORT_KINDS = (
    "packet",
    "mobility",
    "trajectory",
    "arq",
    "watchdog",
    "mac_session",
    "stream",
    "sweep",
    "bench",
)


class ReportSchemaError(ValueError):
    """A RunReport dict violated the schema; ``errors`` lists every issue."""

    def __init__(self, errors: list[str]):
        self.errors = errors
        super().__init__("invalid RunReport: " + "; ".join(errors))


@dataclass
class RunReport:
    """The unified, schema-versioned output of one instrumented run."""

    kind: str
    scenario: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=lambda: {"series": []})
    spans: list = field(default_factory=list)
    profiles: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_observer(
        cls,
        kind: str,
        observer,
        scenario: dict | None = None,
        summary: dict | None = None,
        meta: dict | None = None,
    ) -> "RunReport":
        """Assemble a report from an :class:`~repro.obs.Observer`'s state."""
        from repro import __version__

        full_meta = {
            "schema_version": RUN_REPORT_SCHEMA_VERSION,
            "generator": f"repro {__version__}",
            "kind": kind,
        }
        if meta:
            full_meta.update(meta)
        profiler = getattr(observer, "profiler", None)
        return cls(
            kind=kind,
            scenario=dict(scenario or {}),
            summary=dict(summary or {}),
            metrics=observer.metrics.snapshot(),
            spans=observer.tracer.to_dicts(),
            profiles=dict(profiler.reports) if profiler is not None else {},
            meta=full_meta,
        )

    # ------------------------------------------------------------- queries

    def metric_names(self) -> set[str]:
        """Distinct metric series names in the report."""
        return {entry["name"] for entry in self.metrics.get("series", [])}

    def span_names(self) -> set[str]:
        """Every span name anywhere in the forest."""
        names: set[str] = set()

        def walk(spans):
            for s in spans:
                names.add(s.get("name", ""))
                walk(s.get("children", []))

        walk(self.spans)
        return names

    # -------------------------------------------------------------- export

    def to_dict(self) -> dict:
        return {
            "meta": self.meta,
            "scenario": self.scenario,
            "summary": self.summary,
            "metrics": self.metrics,
            "spans": self.spans,
            "profiles": self.profiles,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=_json_default)

    def write(self, path: str | Path, validate: bool = True) -> Path:
        """Serialise to ``path``; schema-check first unless told not to."""
        d = json.loads(self.to_json())
        if validate:
            validate_run_report(d)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(d, indent=2, sort_keys=True) + "\n")
        return path

    def write_spans_jsonl(self, path: str | Path) -> Path:
        """Flatten the span forest to one-JSON-object-per-line (JSONL)."""
        rows: list[dict] = []

        def walk(spans, parent: str | None, depth: int):
            for s in spans:
                row = {k: v for k, v in s.items() if k != "children"}
                row["parent"] = parent
                row["depth"] = depth
                rows.append(row)
                walk(s.get("children", []), s.get("name"), depth + 1)

        walk(self.spans, None, 0)
        return write_jsonl(rows, path)

    @classmethod
    def from_dict(cls, d: dict) -> "RunReport":
        validate_run_report(d)
        return cls(
            kind=d["meta"]["kind"],
            scenario=d["scenario"],
            summary=d["summary"],
            metrics=d["metrics"],
            spans=d["spans"],
            profiles=d["profiles"],
            meta=d["meta"],
        )


def _json_default(obj: Any):
    """Best-effort coercion for numpy scalars and other stragglers."""
    for attr in ("item",):  # numpy scalars
        if hasattr(obj, attr):
            return getattr(obj, attr)()
    return str(obj)


def write_jsonl(rows: list[dict], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True, default=_json_default) + "\n")
    return path


def load_run_report(path: str | Path) -> RunReport:
    """Read + schema-validate a report file."""
    return RunReport.from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------- validation


def _check(errors: list[str], cond: bool, msg: str) -> bool:
    if not cond:
        errors.append(msg)
    return cond


def _validate_series(entry: Any, i: int, errors: list[str]) -> None:
    ctx = f"metrics.series[{i}]"
    if not _check(errors, isinstance(entry, dict), f"{ctx} is not an object"):
        return
    _check(errors, isinstance(entry.get("name"), str) and entry.get("name"),
           f"{ctx}.name missing or not a string")
    _check(errors, entry.get("kind") in METRIC_KINDS,
           f"{ctx}.kind {entry.get('kind')!r} not in {METRIC_KINDS}")
    labels = entry.get("labels", {})
    ok = isinstance(labels, dict) and all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    )
    _check(errors, ok, f"{ctx}.labels must map str -> str")
    _check(errors, isinstance(entry.get("count"), int) and entry["count"] >= 0
           if "count" in entry else False, f"{ctx}.count missing or not a non-negative int")
    if entry.get("kind") in ("counter", "gauge"):
        _check(errors, isinstance(entry.get("value"), (int, float)),
               f"{ctx}.value missing or not numeric")
    if entry.get("kind") in ("gauge", "histogram"):
        for key in ("total", "mean", "min", "max"):
            v = entry.get(key, "absent")
            _check(errors, v is None or isinstance(v, (int, float)),
                   f"{ctx}.{key} missing or not numeric/null")


def _validate_span(span: Any, path: str, errors: list[str], depth: int = 0) -> None:
    if depth > 32:
        errors.append(f"{path}: span nesting deeper than 32")
        return
    if not _check(errors, isinstance(span, dict), f"{path} is not an object"):
        return
    _check(errors, isinstance(span.get("name"), str) and span.get("name"),
           f"{path}.name missing or not a string")
    _check(errors, isinstance(span.get("status"), str), f"{path}.status missing")
    for key in ("t_start_s", "duration_s"):
        _check(errors, isinstance(span.get(key), (int, float)) and span.get(key, -1) >= 0,
               f"{path}.{key} missing or negative")
    children = span.get("children", [])
    if _check(errors, isinstance(children, list), f"{path}.children not a list"):
        for j, child in enumerate(children):
            _validate_span(child, f"{path}.children[{j}]", errors, depth + 1)


def validate_run_report(d: Any) -> dict:
    """Structural schema check; raises :class:`ReportSchemaError` on failure.

    Returns the input dict unchanged on success so callers can chain.
    """
    errors: list[str] = []
    if not isinstance(d, dict):
        raise ReportSchemaError(["report is not an object"])
    for key, typ in (
        ("meta", dict), ("scenario", dict), ("summary", dict),
        ("metrics", dict), ("spans", list), ("profiles", dict),
    ):
        _check(errors, isinstance(d.get(key), typ), f"{key} missing or not {typ.__name__}")
    meta = d.get("meta", {})
    if isinstance(meta, dict):
        _check(errors, meta.get("schema_version") == RUN_REPORT_SCHEMA_VERSION,
               f"meta.schema_version must be {RUN_REPORT_SCHEMA_VERSION}")
        _check(errors, isinstance(meta.get("generator"), str),
               "meta.generator missing or not a string")
        _check(errors, meta.get("kind") in REPORT_KINDS,
               f"meta.kind {meta.get('kind')!r} not in {REPORT_KINDS}")
    metrics = d.get("metrics", {})
    if isinstance(metrics, dict):
        series = metrics.get("series")
        if _check(errors, isinstance(series, list), "metrics.series missing or not a list"):
            for i, entry in enumerate(series):
                _validate_series(entry, i, errors)
    if isinstance(d.get("spans"), list):
        for i, span in enumerate(d["spans"]):
            _validate_span(span, f"spans[{i}]", errors)
    profiles = d.get("profiles", {})
    if isinstance(profiles, dict):
        for k, v in profiles.items():
            _check(errors, isinstance(k, str) and isinstance(v, str),
                   f"profiles[{k!r}] must map str -> str")
    if errors:
        raise ReportSchemaError(errors)
    return d
