"""Observability subsystem: metrics + stage tracing + profiling hooks.

One object — the :class:`Observer` — bundles the three concerns every
instrumented layer needs:

* ``observer.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (counters / gauges / histograms with labels, pool-mergeable snapshots);
* ``observer.span(name)`` — nested stage tracing with monotonic timing
  (:mod:`repro.obs.tracing`), optionally bracketed by a cProfile capture
  when a :class:`~repro.obs.profiling.SpanProfiler` targets the name;
* :class:`~repro.obs.export.RunReport` — the schema-versioned JSON artifact
  assembled from an observer's state.

**The disabled path is the default and must stay near-free.**  Every
instrumented constructor takes ``observer=None`` and resolves it through
:func:`ensure_observer` to :data:`NULL_OBSERVER`, whose verbs are no-ops
and whose spans are one shared allocation-free object.  Hot loops guard
any extra work with ``if obs.enabled:``.  The budget (< 3% on the DFE
hot path) is enforced by ``benchmarks/bench_obs_overhead.py``.

An *ambient* observer is also available through a context variable, so
deep call chains (e.g. pool-worker task bodies) can pick up the active
observer without threading it through every signature::

    with use_observer(Observer()) as obs:
        run_things()          # anything calling get_observer() records here
    report = RunReport.from_observer("sweep", obs)
"""

from __future__ import annotations

import contextlib
import contextvars

from repro.obs.export import (
    RUN_REPORT_SCHEMA_VERSION,
    ReportSchemaError,
    RunReport,
    load_run_report,
    validate_run_report,
    write_jsonl,
)
from repro.obs.metrics import NULL_METRICS, MetricSeries, MetricsRegistry, NullMetricsRegistry
from repro.obs.profiling import ProfiledSpan, SpanProfiler
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_OBSERVER",
    "Observer",
    "MetricSeries",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullObserver",
    "NullTracer",
    "ReportSchemaError",
    "RunReport",
    "RUN_REPORT_SCHEMA_VERSION",
    "Span",
    "SpanProfiler",
    "Tracer",
    "ensure_observer",
    "get_observer",
    "load_run_report",
    "use_observer",
    "validate_run_report",
    "write_jsonl",
]


class Observer:
    """Metrics registry + tracer + optional profiler, as one handle."""

    __slots__ = ("metrics", "tracer", "profiler")

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        profiler: SpanProfiler | None = None,
        trace: bool = True,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None:
            tracer = Tracer() if trace else NULL_TRACER
        self.tracer = tracer
        self.profiler = profiler

    # ------------------------------------------------------------- tracing

    def span(self, name: str, **attributes):
        """A stage span; profiled when the profiler targets ``name``."""
        span = self.tracer.span(name, **attributes)
        if self.profiler is not None and self.profiler.wants(name):
            return ProfiledSpan(span, self.profiler, name)
        return span

    # ------------------------------------------------------------- metrics

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        self.metrics.count(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.metrics.observe(name, value, **labels)

    # -------------------------------------------------------------- report

    def run_report(
        self,
        kind: str,
        scenario: dict | None = None,
        summary: dict | None = None,
        meta: dict | None = None,
    ) -> RunReport:
        return RunReport.from_observer(kind, self, scenario=scenario, summary=summary, meta=meta)


class NullObserver(Observer):
    """The disabled singleton: no-op verbs, shared no-op span, no state."""

    __slots__ = ()

    enabled = False

    def __init__(self):
        super().__init__(metrics=NULL_METRICS, tracer=NULL_TRACER)

    def span(self, name: str, **attributes):
        return NULL_SPAN

    def count(self, name, value=1.0, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, **labels):
        pass

    def run_report(self, kind, scenario=None, summary=None, meta=None):
        raise TypeError("NULL_OBSERVER records nothing; build a report from a real Observer")


NULL_OBSERVER = NullObserver()


def ensure_observer(observer: Observer | None) -> Observer:
    """``None`` -> the no-op singleton; anything else passes through."""
    return NULL_OBSERVER if observer is None else observer


_current: contextvars.ContextVar[Observer] = contextvars.ContextVar(
    "repro_observer", default=NULL_OBSERVER
)


def get_observer() -> Observer:
    """The ambient observer (NULL_OBSERVER unless inside :func:`use_observer`)."""
    return _current.get()


@contextlib.contextmanager
def use_observer(observer: Observer):
    """Install ``observer`` as the ambient observer for the with-block."""
    token = _current.set(observer)
    try:
        yield observer
    finally:
        _current.reset(token)
