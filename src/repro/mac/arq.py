"""Stop-and-wait ARQ (the retransmission scheme of paper §4.4 / Fig 18b)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.deprecation import warn_once
from repro.utils.rng import ensure_rng

__all__ = ["ArqStats", "StopAndWaitARQ"]


@dataclass
class ArqStats:
    """Outcome of an ARQ simulation run."""

    delivered: int
    attempts: int
    gave_up: int

    @property
    def mean_attempts(self) -> float:
        """Average transmissions per delivered (or abandoned) frame."""
        frames = self.delivered + self.gave_up
        return self.attempts / frames if frames else 0.0

    def efficiency(self) -> float:
        """Delivered frames per attempt (inverse of mean attempts)."""
        return self.delivered / self.attempts if self.attempts else 0.0


@dataclass(frozen=True)
class StopAndWaitARQ:
    """Retransmit until success or ``max_attempts`` exhausted."""

    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def simulate(
        self,
        success_probability: float,
        n_frames: int,
        rng: np.random.Generator | int | None = None,
    ) -> ArqStats:
        """Monte-Carlo ARQ over frames with i.i.d. block success.

        .. deprecated:: use ``repro.api.Session(ScenarioSpec(kind="arq",
           ...)).run()`` as the public entry point.
        """
        warn_once(
            "StopAndWaitARQ.simulate",
            "StopAndWaitARQ.simulate is deprecated as a public entry point; "
            "use repro.api.Session(ScenarioSpec(kind='arq', ...)).run() instead",
        )
        return self._simulate(success_probability, n_frames, rng=rng)

    def _simulate(
        self,
        success_probability: float,
        n_frames: int,
        rng: np.random.Generator | int | None = None,
    ) -> ArqStats:
        from repro.obs import get_observer

        obs = get_observer()
        if not 0.0 <= success_probability <= 1.0:
            raise ValueError("success probability must be in [0, 1]")
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        gen = ensure_rng(rng)
        delivered = attempts = gave_up = 0
        for _ in range(n_frames):
            for attempt in range(1, self.max_attempts + 1):
                attempts += 1
                if gen.random() < success_probability:
                    delivered += 1
                    break
            else:
                gave_up += 1
        if obs.enabled:
            obs.count("arq.frames_total", delivered, outcome="delivered")
            obs.count("arq.frames_total", gave_up, outcome="gave_up")
            obs.count("arq.attempts_total", attempts)
        return ArqStats(delivered=delivered, attempts=attempts, gave_up=gave_up)

    def expected_attempts(self, success_probability: float) -> float:
        """Expected transmissions per frame (truncated geometric)."""
        p = success_probability
        if p <= 0.0:
            return float(self.max_attempts)
        q = 1.0 - p
        n = self.max_attempts
        # E[min(Geom(p), n)] = (1 - q^n) / p.
        return (1.0 - q**n) / p

    def delivery_probability(self, success_probability: float) -> float:
        """Probability a frame is delivered within the attempt budget."""
        return 1.0 - (1.0 - success_probability) ** self.max_attempts
