"""Tag discovery: framed slotted ALOHA, "similar to that used in RFID
systems" (paper §4.4).

The reader broadcasts a QUERY carrying a frame size; each undiscovered tag
picks a uniform slot and backscatters its ID there.  Singleton slots
discover a tag; collided and empty slots waste airtime; the reader re-frames
(doubling on heavy collision, Q-algorithm style) until every tag is found.

Discovery is bounded: a population the re-frame loop cannot resolve (for
example duplicate tag IDs, whose replies the reader can never tell apart,
or a frame cap far below the population) gives up after ``max_rounds``
with a classified :class:`~repro.errors.FailureReason` on the result —
never an unbounded loop, never an anonymous crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FailureReason, FailureStage
from repro.utils.rng import ensure_rng

__all__ = ["DiscoveryResult", "FramedSlottedDiscovery"]


@dataclass
class DiscoveryResult:
    """Outcome of a discovery session.

    ``failure`` is ``None`` on full convergence; a give-up (rounds
    exhausted with tags still outstanding) carries a classified
    ``mac:discovery_exhausted`` reason and lists the ``undiscovered`` tags
    so the caller can quarantine, re-seed or escalate instead of spinning.
    """

    discovered: list[int]
    rounds: int
    slots_used: int
    collisions: int
    undiscovered: list[int] = field(default_factory=list)
    failure: FailureReason | None = None

    @property
    def complete(self) -> bool:
        """Every tag in the population was discovered."""
        return not self.undiscovered and self.failure is None

    @property
    def efficiency(self) -> float:
        """Tags discovered per slot spent."""
        return len(self.discovered) / self.slots_used if self.slots_used else 0.0


@dataclass(frozen=True)
class FramedSlottedDiscovery:
    """Framed-ALOHA discovery with multiplicative frame adaptation."""

    initial_frame: int = 8
    max_rounds: int = 64
    min_frame: int = 2
    max_frame: int = 512

    def run(
        self,
        tag_ids: list[int],
        rng: np.random.Generator | int | None = None,
    ) -> DiscoveryResult:
        """Discover the tags in ``tag_ids``; bounded by ``max_rounds``.

        Returns a :class:`DiscoveryResult`; when the re-frame loop runs out
        of rounds the result carries a ``mac:discovery_exhausted``
        :class:`~repro.errors.FailureReason` plus the undiscovered tags
        instead of raising.  Duplicate tag IDs are never resolvable (two
        tags answering with the same ID are indistinguishable, and an ID
        already acknowledged cannot be acknowledged again), so populations
        containing them always end in a classified give-up.
        """
        gen = ensure_rng(rng)
        remaining = list(tag_ids)
        discovered: list[int] = []
        frame = self.initial_frame
        rounds = slots_used = collisions = 0
        while remaining:
            if rounds >= self.max_rounds:
                return DiscoveryResult(
                    discovered=discovered,
                    rounds=rounds,
                    slots_used=slots_used,
                    collisions=collisions,
                    undiscovered=sorted(remaining),
                    failure=FailureReason(
                        FailureStage.MAC,
                        "discovery_exhausted",
                        f"{len(remaining)} tag(s) undiscovered after "
                        f"{self.max_rounds} rounds",
                    ),
                )
            rounds += 1
            slots_used += frame
            choices = gen.integers(0, frame, size=len(remaining))
            newly: list[int] = []
            collided = 0
            for slot in range(frame):
                here = [tag for tag, c in zip(remaining, choices) if c == slot]
                if len(here) == 1 and here[0] not in discovered and here[0] not in newly:
                    newly.append(here[0])
                elif len(here) >= 1:
                    # Collided slot — or a reply from an ID the reader has
                    # already acknowledged (a duplicate tag), which it can
                    # neither distinguish nor re-acknowledge.
                    collided += 1
            collisions += collided
            for tag in newly:
                remaining.remove(tag)
                discovered.append(tag)
            # Q-algorithm-flavoured adaptation: grow on collisions, shrink
            # when the frame was mostly empty.
            if collided > frame // 4:
                frame = min(frame * 2, self.max_frame)
            elif collided == 0:
                frame = max(frame // 2, self.min_frame)
        return DiscoveryResult(
            discovered=discovered,
            rounds=rounds,
            slots_used=slots_used,
            collisions=collisions,
        )
