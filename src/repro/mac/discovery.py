"""Tag discovery: framed slotted ALOHA, "similar to that used in RFID
systems" (paper §4.4).

The reader broadcasts a QUERY carrying a frame size; each undiscovered tag
picks a uniform slot and backscatters its ID there.  Singleton slots
discover a tag; collided and empty slots waste airtime; the reader re-frames
(doubling on heavy collision, Q-algorithm style) until every tag is found.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["DiscoveryResult", "FramedSlottedDiscovery"]


@dataclass
class DiscoveryResult:
    """Outcome of a discovery session."""

    discovered: list[int]
    rounds: int
    slots_used: int
    collisions: int

    @property
    def efficiency(self) -> float:
        """Tags discovered per slot spent."""
        return len(self.discovered) / self.slots_used if self.slots_used else 0.0


@dataclass(frozen=True)
class FramedSlottedDiscovery:
    """Framed-ALOHA discovery with multiplicative frame adaptation."""

    initial_frame: int = 8
    max_rounds: int = 64
    min_frame: int = 2
    max_frame: int = 512

    def run(
        self,
        tag_ids: list[int],
        rng: np.random.Generator | int | None = None,
    ) -> DiscoveryResult:
        """Discover every tag in ``tag_ids``; raises if rounds run out."""
        gen = ensure_rng(rng)
        remaining = list(tag_ids)
        discovered: list[int] = []
        frame = self.initial_frame
        rounds = slots_used = collisions = 0
        while remaining:
            if rounds >= self.max_rounds:
                raise RuntimeError(
                    f"discovery did not converge in {self.max_rounds} rounds "
                    f"({len(remaining)} tags left)"
                )
            rounds += 1
            slots_used += frame
            choices = gen.integers(0, frame, size=len(remaining))
            newly: list[int] = []
            collided = 0
            for slot in range(frame):
                here = [tag for tag, c in zip(remaining, choices) if c == slot]
                if len(here) == 1:
                    newly.append(here[0])
                elif len(here) > 1:
                    collided += 1
            collisions += collided
            for tag in newly:
                remaining.remove(tag)
                discovered.append(tag)
            # Q-algorithm-flavoured adaptation: grow on collisions, shrink
            # when the frame was mostly empty.
            if collided > frame // 4:
                frame = min(frame * 2, self.max_frame)
            elif collided == 0:
                frame = max(frame // 2, self.min_frame)
        return DiscoveryResult(
            discovered=discovered,
            rounds=rounds,
            slots_used=slots_used,
            collisions=collisions,
        )
