"""MAC link watchdog: consecutive-CRC-failure tracking and degradation.

The last rung of the stack's degradation ladder (retry -> fallback bank ->
**rate drop** -> give up): the reader tracks CRC outcomes per link; a run
of consecutive failures triggers exponential-backoff retransmission and,
at the failure threshold, a fallback down the PHY rate ladder — the same
ladder :mod:`repro.mac.rate_adapt` selects from and
:class:`repro.mac.arq.StopAndWaitARQ` retransmits over.  A success resets
the backoff; a link that keeps failing at the lowest rate is declared
down (the session should re-discover / give up rather than spin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.mac.arq import StopAndWaitARQ
from repro.obs import ensure_observer
from repro.utils.deprecation import warn_once
from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng

__all__ = ["LinkWatchdog", "WatchdogAction", "WatchdogStats"]

log = get_logger(__name__)


@dataclass(frozen=True)
class WatchdogAction:
    """What the MAC should do after one CRC outcome was recorded.

    ``reason`` is one of ``"ok"``, ``"recovered"``, ``"retry"``,
    ``"rate_fallback"`` or ``"link_down"``.
    """

    retransmit: bool
    backoff_s: float
    rate_bps: int
    reason: str


@dataclass
class WatchdogStats:
    """Aggregate outcome of a watchdog-driven transfer simulation."""

    delivered: int = 0
    gave_up: int = 0
    attempts: int = 0
    total_backoff_s: float = 0.0
    rate_trace: list[int] = field(default_factory=list)

    @property
    def final_rate_bps(self) -> int:
        """Rate in force after the last frame."""
        return self.rate_trace[-1] if self.rate_trace else 0


class LinkWatchdog:
    """Consecutive-failure tracker driving backoff and rate fallback.

    Parameters
    ----------
    rates:
        The PHY rate ladder (bits/s, any order; kept sorted).  Defaults to
        the library's :data:`repro.modem.config.RATE_PRESETS`.
    initial_rate_bps:
        Starting rate; defaults to the highest rung.
    fail_threshold:
        Consecutive CRC failures that trigger one rate fallback.
    base_backoff_s / backoff_factor / max_backoff_s:
        Exponential retransmission backoff: the k-th consecutive failure
        waits ``base * factor**k`` seconds, capped at ``max_backoff_s``.
    recover_after:
        Recovery hysteresis: after a rate fallback the link must deliver
        this many *consecutive* CRC-clean frames before
        :attr:`recovery_ready` turns true again — the gate rate-raising
        policies (e.g. :class:`repro.mac.session.LinkSession`) consult, so
        a flapping link settles on its working rung instead of
        oscillating up and down the ladder.
    """

    def __init__(
        self,
        rates: list[int] | None = None,
        initial_rate_bps: int | None = None,
        fail_threshold: int = 3,
        base_backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 2.0,
        recover_after: int = 3,
        observer=None,
    ):
        self._obs = ensure_observer(observer)
        if rates is None:
            from repro.modem.config import RATE_PRESETS

            rates = sorted(RATE_PRESETS)
        if not rates:
            raise ConfigError("watchdog needs a non-empty rate ladder")
        if fail_threshold < 1:
            raise ConfigError("fail_threshold must be >= 1")
        if base_backoff_s < 0 or max_backoff_s < base_backoff_s:
            raise ConfigError("need 0 <= base_backoff_s <= max_backoff_s")
        if backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if recover_after < 1:
            raise ConfigError("recover_after must be >= 1")
        self.ladder = sorted(int(r) for r in rates)
        self.fail_threshold = fail_threshold
        self.base_backoff_s = base_backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.recover_after = recover_after
        start = initial_rate_bps if initial_rate_bps is not None else self.ladder[-1]
        if start not in self.ladder:
            raise ConfigError(f"initial rate {start} not on the ladder {self.ladder}")
        #: Position on the ladder, kept as the canonical state so rate
        #: moves are index arithmetic, never an O(n) ``ladder.index`` scan.
        self._rung_idx = self.ladder.index(start)
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self._backoff_exponent = 0
        self._fallback_active = False

    # ------------------------------------------------------------ tracking

    @property
    def current_rate_bps(self) -> int:
        """The rate in force (the ladder entry at :attr:`rung_index`)."""
        return self.ladder[self._rung_idx]

    @current_rate_bps.setter
    def current_rate_bps(self, rate_bps: int) -> None:
        self._rung_idx = self.ladder.index(rate_bps)

    @property
    def rung_index(self) -> int:
        """Current position on the ladder (0 = most robust rung)."""
        return self._rung_idx

    def observe_rung(self, index: int) -> None:
        """Sync the watchdog to an externally assigned ladder position."""
        if not 0 <= index < len(self.ladder):
            raise ConfigError(f"rung index {index} not on the ladder {self.ladder}")
        self._rung_idx = index

    def observe_rate(self, rate_bps: int) -> None:
        """Sync the watchdog to an externally assigned rate."""
        if rate_bps not in self.ladder:
            raise ConfigError(f"rate {rate_bps} not on the ladder {self.ladder}")
        self._rung_idx = self.ladder.index(rate_bps)

    @property
    def recovery_ready(self) -> bool:
        """Whether a rate raise is allowed right now.

        False from the moment of a rate fallback until ``recover_after``
        consecutive CRC-clean frames have been recorded — the hysteresis
        that stops a flapping link from oscillating between rungs.
        """
        return not self._fallback_active

    def reset(self) -> None:
        """Forget all failure state (e.g. after re-discovery)."""
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self._backoff_exponent = 0
        self._fallback_active = False

    def _next_backoff(self) -> float:
        backoff = self.base_backoff_s * self.backoff_factor**self._backoff_exponent
        self._backoff_exponent += 1
        return min(backoff, self.max_backoff_s)

    def record(self, crc_ok: bool) -> WatchdogAction:
        """Record one CRC outcome and return the MAC's next move."""
        action = self._record(crc_ok)
        if self._obs.enabled:
            self._obs.count("mac.watchdog.actions_total", reason=action.reason)
            self._obs.count("mac.watchdog.crc_total", crc="ok" if crc_ok else "fail")
            self._obs.gauge("mac.watchdog.rate_bps", action.rate_bps)
        return action

    def _record(self, crc_ok: bool) -> WatchdogAction:
        if crc_ok:
            self.consecutive_failures = 0
            self._backoff_exponent = 0
            self.consecutive_successes += 1
            reason = "ok"
            if self._fallback_active and self.consecutive_successes >= self.recover_after:
                self._fallback_active = False
                reason = "recovered"
            return WatchdogAction(
                retransmit=False, backoff_s=0.0, rate_bps=self.current_rate_bps, reason=reason
            )
        self.consecutive_failures += 1
        self.consecutive_successes = 0
        backoff = self._next_backoff()
        if self.consecutive_failures < self.fail_threshold:
            return WatchdogAction(
                retransmit=True,
                backoff_s=backoff,
                rate_bps=self.current_rate_bps,
                reason="retry",
            )
        # Threshold hit: fall back one rung (if any remain).  Either way the
        # link enters recovery hysteresis: no raise until recover_after
        # consecutive clean frames.
        self.consecutive_failures = 0
        self._fallback_active = True
        if self._rung_idx > 0:
            self._rung_idx -= 1
            log.warning(
                "link watchdog: %d consecutive CRC failures, rate fallback to %d bps",
                self.fail_threshold,
                self.current_rate_bps,
            )
            return WatchdogAction(
                retransmit=True,
                backoff_s=backoff,
                rate_bps=self.current_rate_bps,
                reason="rate_fallback",
            )
        log.warning("link watchdog: link down at lowest rate %d bps", self.current_rate_bps)
        return WatchdogAction(
            retransmit=True,
            backoff_s=min(self.max_backoff_s, backoff),
            rate_bps=self.current_rate_bps,
            reason="link_down",
        )

    # ---------------------------------------------------------- simulation

    def simulate(
        self,
        success_probability,
        n_frames: int,
        arq: StopAndWaitARQ | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> WatchdogStats:
        """Monte-Carlo a watchdog-supervised transfer.

        ``success_probability`` maps a rate in bits/s to the per-attempt
        CRC success probability (a callable, or a dict over the ladder).
        Each frame gets the stop-and-wait attempt budget of ``arq``; every
        attempt's outcome feeds the watchdog, so rate fallback and backoff
        accumulate exactly as they would against the real PHY.

        .. deprecated:: use ``repro.api.Session(ScenarioSpec(kind="watchdog",
           ...)).run()`` as the public entry point.
        """
        warn_once(
            "LinkWatchdog.simulate",
            "LinkWatchdog.simulate is deprecated as a public entry point; "
            "use repro.api.Session(ScenarioSpec(kind='watchdog', ...)).run() instead",
        )
        return self._simulate(success_probability, n_frames, arq=arq, rng=rng)

    def _simulate(
        self,
        success_probability,
        n_frames: int,
        arq: StopAndWaitARQ | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> WatchdogStats:
        if n_frames < 0:
            raise ConfigError("n_frames must be non-negative")
        arq = arq or StopAndWaitARQ()
        gen = ensure_rng(rng)
        if callable(success_probability):
            p_of = success_probability
        else:
            table = dict(success_probability)
            p_of = lambda rate: table[rate]  # noqa: E731
        stats = WatchdogStats()
        obs = self._obs
        with obs.span("watchdog_transfer", n_frames=n_frames):
            self._simulate_frames(stats, p_of, n_frames, arq, gen)
        if obs.enabled:
            obs.count("mac.watchdog.frames_total", stats.delivered, outcome="delivered")
            obs.count("mac.watchdog.frames_total", stats.gave_up, outcome="gave_up")
            obs.observe("mac.watchdog.backoff_s", stats.total_backoff_s)
        return stats

    def _simulate_frames(self, stats, p_of, n_frames, arq, gen) -> None:
        for _ in range(n_frames):
            delivered = False
            for _attempt in range(arq.max_attempts):
                stats.attempts += 1
                ok = gen.random() < float(p_of(self.current_rate_bps))
                action = self.record(ok)
                stats.total_backoff_s += action.backoff_s
                if ok:
                    delivered = True
                    break
            if delivered:
                stats.delivered += 1
            else:
                stats.gave_up += 1
            stats.rate_trace.append(self.current_rate_bps)
