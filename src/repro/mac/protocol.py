"""Master/slave TDMA scheduling with per-tag rate assignment and ARQ.

The reader owns the medium: after discovery it polls tags round-robin; each
poll carries the tag's assigned (rate, coding) pair piggybacked on the
downlink, the tag answers with one uplink frame, and CRC failure triggers a
stop-and-wait retransmission in the tag's next turn (paper §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mac.arq import StopAndWaitARQ
from repro.mac.rate_adapt import LinkProfile, RateChoice
from repro.utils.rng import ensure_rng

__all__ = ["MacPacketOutcome", "TdmaScheduler"]


@dataclass
class MacPacketOutcome:
    """One uplink frame attempt in the TDMA schedule."""

    tag_id: int
    attempt: int
    success: bool
    airtime_s: float
    payload_bits: int


@dataclass
class TdmaScheduler:
    """Round-robin polling of discovered tags with ARQ accounting.

    Parameters
    ----------
    profile:
        The reader's rate/coding database.
    payload_bytes:
        Uplink frame payload size.
    overhead_s:
        Fixed per-frame airtime overhead charged to the schedule.  The
        raw preamble + training cost is ~130 ms, but the pipelined reader
        overlaps most of it with the previous tag's demodulation; the
        default models the residual un-amortised poll/sync cost.
    arq:
        Stop-and-wait retransmission policy.
    """

    profile: LinkProfile
    payload_bytes: int = 128
    overhead_s: float = 0.050
    arq: StopAndWaitARQ = field(default_factory=StopAndWaitARQ)

    def frame_airtime_s(self, choice: RateChoice) -> float:
        """Airtime of one uplink frame at an assigned rate/coding."""
        bits_on_air = self.payload_bytes * 8 / choice.coding.code_rate
        return self.overhead_s + bits_on_air / choice.rate.rate_bps

    def run_round_robin(
        self,
        assignments: dict[int, tuple[RateChoice, float]],
        frames_per_tag: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[MacPacketOutcome]:
        """Poll each tag for ``frames_per_tag`` delivered-or-abandoned frames.

        ``assignments`` maps tag id -> (rate choice, SNR dB).  Returns the
        flat outcome log; throughput analysis lives in
        :mod:`repro.mac.network`.
        """
        gen = ensure_rng(rng)
        outcomes: list[MacPacketOutcome] = []
        payload_bits = self.payload_bytes * 8
        for tag_id, (choice, snr_db) in assignments.items():
            p_block = choice.coding.block_success(choice.rate.ber(snr_db))
            airtime = self.frame_airtime_s(choice)
            for _ in range(frames_per_tag):
                for attempt in range(1, self.arq.max_attempts + 1):
                    success = bool(gen.random() < p_block)
                    outcomes.append(
                        MacPacketOutcome(
                            tag_id=tag_id,
                            attempt=attempt,
                            success=success,
                            airtime_s=airtime,
                            payload_bits=payload_bits,
                        )
                    )
                    if success:
                        break
        return outcomes
