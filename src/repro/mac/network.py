"""Multi-tag network simulation: the Fig 18c rate-adaptation study.

Paper §7.3 (Rate Adaptation): the reader's FoV widens to 50deg (still 4 W);
tags sit at uniform distances between 1 m and 4.3 m, i.e. SNRs between
65 dB and 14 dB by the fitted link budget; the metric is mean per-tag
throughput over 100 runs.  Baseline policy: every tag runs the rate
appropriate for the *weakest* tag; adaptive policy: each tag gets its own
goodput-maximising (rate, coding) pair.  The adaptive gain grows with tag
count (~1.2x at 4 tags, ~3.7x at 100 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mac.discovery import FramedSlottedDiscovery
from repro.mac.protocol import TdmaScheduler
from repro.mac.rate_adapt import LinkProfile, default_profile
from repro.optics.retroreflector import LinkBudget
from repro.utils.rng import ensure_rng

__all__ = ["NetworkResult", "NetworkSimulator", "TagDeployment"]


@dataclass
class TagDeployment:
    """One tag's placement and measured link quality."""

    tag_id: int
    distance_m: float
    snr_db: float


@dataclass
class NetworkResult:
    """Mean-throughput comparison of the two assignment policies."""

    n_tags: int
    adaptive_throughput_bps: float
    baseline_throughput_bps: float
    discovery_slots: int

    @property
    def gain(self) -> float:
        """Adaptive over baseline mean-throughput ratio."""
        if self.baseline_throughput_bps <= 0:
            return float("inf")
        return self.adaptive_throughput_bps / self.baseline_throughput_bps


@dataclass
class NetworkSimulator:
    """Deploy tags, discover them, schedule uplinks, compare policies."""

    profile: LinkProfile = field(default_factory=default_profile)
    budget: LinkBudget = field(default_factory=LinkBudget.wide_fov)
    min_distance_m: float = 1.0
    max_distance_m: float = 4.3
    payload_bytes: int = 128
    frames_per_tag: int = 20
    snr_noise_db: float = 1.0
    """Per-tag SNR measurement jitter."""

    def deploy(self, n_tags: int, rng: np.random.Generator | int | None = None) -> list[TagDeployment]:
        """Place tags uniformly in range and compute their link SNR."""
        if n_tags < 1:
            raise ValueError("need at least one tag")
        gen = ensure_rng(rng)
        distances = gen.uniform(self.min_distance_m, self.max_distance_m, size=n_tags)
        out = []
        for i, d in enumerate(distances):
            snr = float(self.budget.snr_db(d)) + float(gen.normal(0.0, self.snr_noise_db))
            out.append(TagDeployment(tag_id=i, distance_m=float(d), snr_db=snr))
        return out

    def _mean_throughput(self, scheduler: TdmaScheduler, assignments: dict) -> float:
        """Expected per-tag goodput under sequential TDMA service.

        Every delivered frame costs ``expected_attempts`` airtimes;
        throughput per tag = payload bits / expected airtime per delivery,
        averaged over tags (TDMA serves tags one at a time, so per-tag
        throughput is its own link efficiency — the paper's "mean
        throughput from all the tags" metric).
        """
        rates = []
        payload_bits = scheduler.payload_bytes * 8
        for _, (choice, snr_db) in assignments.items():
            p = choice.coding.block_success(choice.rate.ber(snr_db))
            attempts = scheduler.arq.expected_attempts(p)
            delivered = scheduler.arq.delivery_probability(p)
            airtime = scheduler.frame_airtime_s(choice) * attempts
            rates.append(payload_bits * delivered / airtime)
        return float(np.mean(rates))

    def run(
        self,
        n_tags: int,
        rng: np.random.Generator | int | None = None,
        monte_carlo: bool = False,
    ) -> NetworkResult:
        """One deployment: discovery, then both policies on the same tags."""
        gen = ensure_rng(rng)
        tags = self.deploy(n_tags, gen)
        discovery = FramedSlottedDiscovery().run([t.tag_id for t in tags], gen)

        scheduler = TdmaScheduler(self.profile, payload_bytes=self.payload_bytes)
        adaptive = {t.tag_id: (self.profile.best_choice(t.snr_db), t.snr_db) for t in tags}
        # Baseline (paper §7.3): every tag runs the rate appropriate for the
        # one with the lowest SNR — identical to adaptive for a single tag.
        weakest = min(tags, key=lambda t: t.snr_db)
        common = self.profile.best_choice(weakest.snr_db)
        baseline = {t.tag_id: (common, t.snr_db) for t in tags}

        if monte_carlo:
            adaptive_tp = self._measured_throughput(scheduler, adaptive, gen)
            baseline_tp = self._measured_throughput(scheduler, baseline, gen)
        else:
            adaptive_tp = self._mean_throughput(scheduler, adaptive)
            baseline_tp = self._mean_throughput(scheduler, baseline)
        return NetworkResult(
            n_tags=n_tags,
            adaptive_throughput_bps=adaptive_tp,
            baseline_throughput_bps=baseline_tp,
            discovery_slots=discovery.slots_used,
        )

    def _measured_throughput(self, scheduler: TdmaScheduler, assignments: dict, rng) -> float:
        outcomes = scheduler.run_round_robin(assignments, self.frames_per_tag, rng)
        per_tag: dict[int, list] = {}
        for o in outcomes:
            per_tag.setdefault(o.tag_id, []).append(o)
        rates = []
        for _, log in per_tag.items():
            delivered_bits = sum(o.payload_bits for o in log if o.success)
            airtime = sum(o.airtime_s for o in log)
            rates.append(delivered_bits / airtime if airtime > 0 else 0.0)
        return float(np.mean(rates))

    def gain_curve(
        self,
        tag_counts: list[int],
        n_runs: int = 100,
        rng: np.random.Generator | int | None = None,
    ) -> dict[int, float]:
        """Mean adaptive/baseline gain per tag count (the Fig 18c series)."""
        gen = ensure_rng(rng)
        out: dict[int, float] = {}
        for n in tag_counts:
            gains = [self.run(n, gen).gain for _ in range(n_runs)]
            out[n] = float(np.mean(gains))
        return out
