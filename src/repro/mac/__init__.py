"""Rate-adaptive MAC layer (paper §4.4, evaluated in §7.3).

A thin master/slave TDMA MAC: RFID-style tag discovery, per-tag SNR
measurement, a profiled database mapping SNR to the goodput-maximising
(bit rate, Reed-Solomon coding rate) pair, stop-and-wait ARQ triggered
by CRC failure, and a link watchdog degrading through exponential backoff
and rate fallback when CRC failures streak.
"""

from repro.mac.arq import ArqStats, StopAndWaitARQ
from repro.mac.discovery import DiscoveryResult, FramedSlottedDiscovery
from repro.mac.network import NetworkResult, NetworkSimulator, TagDeployment
from repro.mac.protocol import MacPacketOutcome, TdmaScheduler
from repro.mac.session import LinkSession, RoundRecord, SessionStats
from repro.mac.rate_adapt import (
    CodingOption,
    LinkProfile,
    RateChoice,
    RateOption,
    default_profile,
)
from repro.mac.watchdog import LinkWatchdog, WatchdogAction, WatchdogStats

__all__ = [
    "ArqStats",
    "CodingOption",
    "DiscoveryResult",
    "FramedSlottedDiscovery",
    "LinkProfile",
    "LinkSession",
    "LinkWatchdog",
    "MacPacketOutcome",
    "NetworkResult",
    "NetworkSimulator",
    "RateChoice",
    "RateOption",
    "RoundRecord",
    "SessionStats",
    "StopAndWaitARQ",
    "TagDeployment",
    "TdmaScheduler",
    "WatchdogAction",
    "WatchdogStats",
    "default_profile",
]
