"""SNR -> (bit rate, coding rate) selection (paper §4.4 + Fig 18b).

The reader keeps a profiled database: for each PHY rate a BER-vs-SNR
waterfall, and for each Reed-Solomon option the induced block success
probability; the goodput-maximising combination is piggybacked to each tag
on the downlink.  Profiles default to waterfalls calibrated against this
reproduction's own trace-driven emulation (Fig 18a harness); callers can
install measured profiles instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "CodingOption",
    "LinkProfile",
    "RateChoice",
    "RateOption",
    "default_profile",
]


@dataclass(frozen=True)
class RateOption:
    """One PHY operating point in the profile database.

    ``threshold_db`` is the SNR at 1% raw BER; ``waterfall_db`` the SNR
    decrease that multiplies BER by 10 (steepness of the waterfall).
    """

    rate_bps: float
    threshold_db: float
    waterfall_db: float = 3.0

    def ber(self, snr_db: float) -> float:
        """Raw bit error rate at a given SNR (waterfall model, capped at 0.5)."""
        exponent = 2.0 + (snr_db - self.threshold_db) / self.waterfall_db
        return float(np.clip(10.0 ** (-exponent), 1e-12, 0.5))


@dataclass(frozen=True)
class CodingOption:
    """A Reed-Solomon RS(n, k) option over GF(256)."""

    n: int = 255
    k: int = 255  # k == n means uncoded

    def __post_init__(self) -> None:
        if not 0 < self.k <= self.n <= 255:
            raise ValueError(f"need 0 < k <= n <= 255, got n={self.n}, k={self.k}")

    @property
    def code_rate(self) -> float:
        """Information rate k/n."""
        return self.k / self.n

    @property
    def t(self) -> int:
        """Correctable symbol errors per block."""
        return (self.n - self.k) // 2

    def block_success(self, bit_error_rate: float) -> float:
        """Probability an n-symbol block decodes, given i.i.d. bit errors."""
        symbol_error = 1.0 - (1.0 - bit_error_rate) ** 8
        if self.t == 0:
            return float((1.0 - symbol_error) ** self.n)
        return float(stats.binom.cdf(self.t, self.n, symbol_error))


@dataclass(frozen=True)
class RateChoice:
    """A concrete assignment: PHY rate + coding + its expected goodput."""

    rate: RateOption
    coding: CodingOption
    goodput_bps: float


class LinkProfile:
    """The reader's profiled database of rate/coding options."""

    def __init__(self, rates: list[RateOption], codings: list[CodingOption] | None = None):
        if not rates:
            raise ValueError("profile needs at least one rate option")
        self.rates = sorted(rates, key=lambda r: r.rate_bps)
        self.codings = codings or [
            CodingOption(255, 255),
            CodingOption(255, 251),
            CodingOption(255, 223),
            CodingOption(255, 191),
            CodingOption(255, 127),
        ]

    def goodput(self, rate: RateOption, coding: CodingOption, snr_db: float) -> float:
        """Expected stop-and-wait goodput of one option at an SNR.

        Goodput = raw rate x code rate x block success probability (each
        failed block is retransmitted; expected attempts = 1/p).
        """
        p = coding.block_success(rate.ber(snr_db))
        return rate.rate_bps * coding.code_rate * p

    def best_choice(self, snr_db: float) -> RateChoice:
        """The goodput-maximising (rate, coding) pair at an SNR."""
        best: RateChoice | None = None
        for rate in self.rates:
            for coding in self.codings:
                g = self.goodput(rate, coding, snr_db)
                if best is None or g > best.goodput_bps:
                    best = RateChoice(rate=rate, coding=coding, goodput_bps=g)
        assert best is not None
        return best

    def lowest_rate(self) -> RateOption:
        """The most robust (lowest) PHY rate in the database."""
        return self.rates[0]

    def most_robust_choice(self, snr_db: float) -> RateChoice:
        """Lowest rate with the coding that survives at this SNR (baseline
        policy: everyone runs the weakest tag's assignment)."""
        rate = self.lowest_rate()
        best: RateChoice | None = None
        for coding in self.codings:
            g = self.goodput(rate, coding, snr_db)
            if best is None or g > best.goodput_bps:
                best = RateChoice(rate=rate, coding=coding, goodput_bps=g)
        assert best is not None
        return best


def default_profile() -> LinkProfile:
    """Profile with thresholds shaped like the paper's emulation (Fig 18a).

    The paper quotes ~20 dB between 1 and 4 Kbps, ~8 dB between 4 and
    8 Kbps (Table 3), and 32 Kbps decodable under a 55 dB restriction.
    Thresholds here follow that ladder; the Fig 18a benchmark recalibrates
    them against this reproduction's own measured waterfalls.
    """
    return LinkProfile(
        rates=[
            RateOption(1_000, threshold_db=-2.0),
            RateOption(2_000, threshold_db=8.0),
            RateOption(4_000, threshold_db=18.0),
            RateOption(8_000, threshold_db=26.0),
            RateOption(12_000, threshold_db=29.0),
            RateOption(16_000, threshold_db=31.0),
            RateOption(24_000, threshold_db=40.0),
            RateOption(32_000, threshold_db=50.0),
        ]
    )
