"""Closed-loop reader-tag session: the MAC's adaptation actually closing.

Paper §4.4: the reader "piggyback[s] the suggested bit rate and coding rate
in the downlink message based on the SNR measurement and a database ...
The MAC will trigger retransmission when CRC check fails.  [It] still works
for any single tag when its SNR changes in operation."

This module runs that loop against the *real* PHY in both directions:

* uplink packets go through the full tag -> channel -> reader pipeline at
  the currently assigned rate;
* assignments travel as :class:`repro.downlink.PollMessage` frames over
  the Manchester downlink (and a corrupted poll means the tag simply keeps
  its old rate);
* rate selection seeds from the profile database at the preamble's SNR
  estimate and then refines on delivery outcomes (raise after a success
  streak, drop on failure) — robust to the estimate's model-error floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import OpticalLink
from repro.downlink.frame import PollMessage
from repro.downlink.link import DownlinkChannel
from repro.downlink.modem import ManchesterOOKModem
from repro.mac.rate_adapt import LinkProfile, default_profile
from repro.mac.watchdog import LinkWatchdog
from repro.obs import ensure_observer
from repro.modem.config import RATE_PRESETS, preset_for_rate
from repro.optics.geometry import LinkGeometry
from repro.phy.pipeline import PacketSimulator
from repro.utils.rng import ensure_rng

__all__ = ["LinkSession", "RoundRecord", "SessionStats"]

_SYNC = np.array([1, 0, 1, 0, 1, 1, 0, 0], dtype=np.uint8)


@dataclass
class RoundRecord:
    """One poll + uplink round."""

    round_index: int
    assigned_rate_bps: int
    poll_delivered: bool
    tag_rate_bps: int
    crc_ok: bool
    ber: float
    snr_est_db: float


@dataclass
class SessionStats:
    """Aggregate session outcome."""

    rounds: list[RoundRecord] = field(default_factory=list)
    total_backoff_s: float = 0.0
    """Airtime spent in watchdog retransmission backoff (0 without one)."""

    @property
    def delivered(self) -> int:
        """Packets passing CRC."""
        return sum(r.crc_ok for r in self.rounds)

    @property
    def final_rate_bps(self) -> int:
        """Rate in force at the end of the session."""
        return self.rounds[-1].tag_rate_bps if self.rounds else 0

    def goodput_bps(self, payload_bytes: int) -> float:
        """Delivered payload bits over total uplink airtime."""
        airtime = sum(
            payload_bytes * 8 / r.tag_rate_bps for r in self.rounds if r.tag_rate_bps
        )
        if airtime <= 0:
            return 0.0
        return self.delivered * payload_bytes * 8 / airtime


class LinkSession:
    """A single reader-tag pair running the closed adaptation loop."""

    def __init__(
        self,
        distance_m: float,
        profile: LinkProfile | None = None,
        payload_bytes: int = 16,
        raise_after: int = 3,
        watchdog: LinkWatchdog | None = None,
        rng: np.random.Generator | int | None = None,
        observer=None,
    ):
        self._obs = ensure_observer(observer)
        self.distance_m = distance_m
        self.profile = profile or default_profile()
        self.payload_bytes = payload_bytes
        self.raise_after = raise_after
        if watchdog is not None and watchdog.ladder != sorted(RATE_PRESETS):
            raise ValueError("watchdog rate ladder must match the session's RATE_PRESETS")
        if watchdog is not None and not watchdog._obs.enabled:
            watchdog._obs = self._obs  # session's observer sees watchdog outcomes
        self.watchdog = watchdog
        self._rng = ensure_rng(rng)
        self._ladder = sorted(RATE_PRESETS)
        self._simulators: dict[int, PacketSimulator] = {}
        self._downlink_modem = ManchesterOOKModem()
        self._downlink = DownlinkChannel(distance_m=distance_m)
        self._tag_seed = int(self._rng.integers(0, 2**31))

    # ------------------------------------------------------------ plumbing

    def _simulator(self, rate_bps: int) -> PacketSimulator:
        if rate_bps not in self._simulators:
            self._simulators[rate_bps] = PacketSimulator(
                config=preset_for_rate(rate_bps),
                link=OpticalLink(geometry=LinkGeometry(distance_m=self.distance_m)),
                payload_bytes=self.payload_bytes,
                rng=self._tag_seed,  # same physical tag at every rate
                observer=self._obs,
            )
        return self._simulators[rate_bps]

    def _send_poll(self, rate_bps: int) -> bool:
        """Downlink the assignment; returns whether the tag decoded it."""
        msg = PollMessage(tag_id=1, rate_bps=rate_bps)
        bits = np.concatenate([_SYNC, msg.to_bits()])
        wave = self._downlink_modem.modulate(bits)
        rx = self._downlink.transmit(wave, self._rng)
        try:
            offset = self._downlink_modem.synchronise(rx, _SYNC)
            decoded = self._downlink_modem.demodulate(rx[offset:], bits.size)
            return PollMessage.from_bits(decoded[_SYNC.size :]) == msg
        except ValueError:
            return False

    def _step_rate(self, current: int, up: bool) -> int:
        idx = self._ladder.index(current)
        idx = min(idx + 1, len(self._ladder) - 1) if up else max(idx - 1, 0)
        return self._ladder[idx]

    # ---------------------------------------------------------------- run

    def run(self, n_rounds: int = 12) -> SessionStats:
        """Run the closed loop for ``n_rounds`` poll+packet rounds."""
        obs = self._obs
        stats = SessionStats()
        # Probe at the most robust rate; its preamble SNR seeds the table.
        tag_rate = self._ladder[0]
        assigned = tag_rate
        success_streak = 0
        for n in range(n_rounds):
            with obs.span("mac_round", index=n):
                with obs.span("poll"):
                    poll_ok = self._send_poll(assigned)
                if poll_ok:
                    tag_rate = assigned
                if obs.enabled:
                    obs.count(
                        "mac.polls_total", outcome="delivered" if poll_ok else "lost"
                    )
                    obs.gauge("mac.assigned_rate_bps", assigned)
                result = self._simulator(tag_rate)._run_packet(rng=self._rng)
                if obs.enabled:
                    obs.count(
                        "mac.rounds_total", crc="ok" if result.crc_ok else "fail"
                    )
                stats.rounds.append(
                    RoundRecord(
                        round_index=n,
                        assigned_rate_bps=assigned,
                        poll_delivered=poll_ok,
                        tag_rate_bps=tag_rate,
                        crc_ok=result.crc_ok,
                        ber=result.ber,
                        snr_est_db=result.snr_est_db,
                    )
                )
                if n == 0 and result.detected and np.isfinite(result.snr_est_db):
                    # Database seed from the measured SNR (conservative: the
                    # estimate carries the model-error floor).
                    seeded = self.profile.best_choice(result.snr_est_db).rate.rate_bps
                    assigned = min(int(seeded), self._ladder[-1])
                    success_streak = 0
                    continue
                if self.watchdog is not None:
                    # Watchdog-supervised failure path: consecutive-CRC
                    # tracking drives exponential backoff and rate fallback.
                    self.watchdog.observe_rate(tag_rate)
                    action = self.watchdog.record(result.crc_ok)
                    stats.total_backoff_s += action.backoff_s
                    if result.crc_ok:
                        success_streak += 1
                        # Recovery hysteresis: after a fallback the watchdog
                        # demands its own clean streak before a raise.
                        if success_streak >= self.raise_after and self.watchdog.recovery_ready:
                            assigned = self._step_rate(tag_rate, up=True)
                            success_streak = 0
                    else:
                        assigned = action.rate_bps
                        success_streak = 0
                elif result.crc_ok:
                    success_streak += 1
                    if success_streak >= self.raise_after:
                        assigned = self._step_rate(tag_rate, up=True)
                        success_streak = 0
                else:
                    assigned = self._step_rate(tag_rate, up=False)
                    success_streak = 0
        return stats
