"""Exception taxonomy and failure classification for the whole stack.

Every failure the receiver or MAC can produce is either a typed exception
(for programming/configuration errors that should surface immediately) or a
structured :class:`FailureReason` carried on the result object (for channel-
induced losses that a production system must count, log and degrade
through).  The invariant the integration suite enforces: a packet outcome is
either a clean decode or a *classified* failure — never an anonymous
traceback, never a silently-wrong success.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "ConfigError",
    "DetectionError",
    "EqualizationError",
    "FailureReason",
    "FailureStage",
    "ReproError",
    "StageEvent",
    "TaskTimeoutError",
    "TrainingError",
]


class ReproError(Exception):
    """Base class for every library-raised error."""


class ConfigError(ReproError):
    """Invalid configuration or frame-format combination."""


class DetectionError(ReproError):
    """Preamble search could not produce a usable packet start."""


class TrainingError(ReproError):
    """Online channel training failed or produced an unusable bank."""


class TaskTimeoutError(ReproError):
    """A scheduled sweep task exceeded its per-task wall-clock budget."""


class EqualizationError(ReproError, ValueError):
    """The equalizer/demodulator could not process the payload section.

    Also a :class:`ValueError`: demodulator input validation predates the
    taxonomy and callers (and tests) legitimately catch ``ValueError`` for
    bad-argument errors — the dual base keeps that contract while letting
    the hardened receiver classify equalization failures by type.
    """


class FailureStage(str, Enum):
    """Which pipeline stage a failure is attributed to."""

    CAPTURE = "capture"
    DETECTION = "detection"
    TRAINING = "training"
    EQUALIZATION = "equalization"
    DECODE = "decode"
    MAC = "mac"
    CONFIG = "config"
    SCHEDULER = "scheduler"
    NETWORK = "network"


@dataclass(frozen=True)
class FailureReason:
    """A classified failure: which stage gave up, and why.

    ``code`` is a short, stable, machine-matchable identifier (e.g.
    ``"preamble_not_found"``); ``detail`` is free-form human context.
    """

    stage: FailureStage
    code: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        base = f"{self.stage.value}:{self.code}"
        return f"{base} ({self.detail})" if self.detail else base


@dataclass(frozen=True)
class StageEvent:
    """One receiver-stage outcome record (the degradation audit trail).

    ``status`` is one of ``"ok"``, ``"retried"``, ``"fallback"`` or
    ``"failed"`` — a recovered stage records how it recovered, so tests and
    operators can distinguish a clean decode from a degraded-but-successful
    one.
    """

    stage: FailureStage
    status: str
    detail: str = ""
