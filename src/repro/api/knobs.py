"""Per-kind knob groups for the v2 :class:`~repro.api.ScenarioSpec`.

The v1 spec was one flat dataclass: every new scenario kind dumped more
kind-private knobs into a single namespace, and nothing stopped a caller
from setting ``roll_rate_deg_s`` on an ARQ run (it was silently ignored).
v2 groups the knobs by the scenario family that consumes them:

* :class:`PhyKnobs` — static-pose PHY runs (``packet``, ``stream``);
* :class:`MobilityKnobs` — constant-rate §8 drift (``mobility``);
* :class:`TrajectoryKnobs` — waypoint-path mobility (``trajectory``);
* :class:`MacKnobs` — the analytic MAC models (``arq``, ``watchdog``);
* :class:`StreamKnobs` — chunk-fed streaming delivery (``stream``).

Groups are plain frozen dataclasses.  They do not raise on construction;
instead :meth:`problems` returns every violation as a string, so the
owning spec can aggregate all of them (its own and every group's) into
one ``ValueError`` — the same all-violations contract v1 had.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.trajectory import Trajectory, named_trajectory, trajectory_names

__all__ = [
    "MacKnobs",
    "MobilityKnobs",
    "PhyKnobs",
    "StreamKnobs",
    "TrajectoryKnobs",
]

_BANK_MODES = ("trained", "nominal")


@dataclass(frozen=True)
class PhyKnobs:
    """Static-pose PHY condition: orientation, basis bank, ambient light,
    and the polarization fidelity rung of the tag under test.

    ``fidelity``/``spectrum``/``extinction_db``/``temperature_c`` configure
    the :mod:`repro.optics.polarstack` ladder: the default ``"malus"`` rung
    ignores the other three and keeps every describe() fingerprint
    byte-identical to the pre-ladder spec; ``"jones"``/``"stokes"`` build a
    :class:`~repro.optics.polarstack.PolarStackConfig` via
    :meth:`polarization_config` (``extinction_db=None`` means ideal
    polarizers on both tag and reader).
    """

    roll_deg: float = 0.0
    yaw_deg: float = 0.0
    bank_mode: str = "trained"
    ambient: str | None = None
    fidelity: str = "malus"
    spectrum: str = "monochromatic"
    extinction_db: float | None = None
    temperature_c: float = 25.0

    def problems(self) -> list[str]:
        out = []
        if self.bank_mode not in _BANK_MODES:
            out.append(f"bank_mode {self.bank_mode!r} not in {_BANK_MODES}")
        if self.ambient is not None:
            from repro.optics.ambient import AMBIENT_PRESETS

            if self.ambient not in AMBIENT_PRESETS:
                out.append(f"ambient {self.ambient!r} not in {sorted(AMBIENT_PRESETS)}")
        from repro.lcm.array import FIDELITY_RUNGS

        if self.fidelity not in FIDELITY_RUNGS:
            out.append(f"fidelity {self.fidelity!r} not in {FIDELITY_RUNGS}")
        from repro.optics.polarstack import SPECTRUM_PRESETS

        if self.spectrum not in SPECTRUM_PRESETS:
            out.append(f"spectrum {self.spectrum!r} not in {sorted(SPECTRUM_PRESETS)}")
        if self.extinction_db is not None and self.extinction_db < 0:
            out.append("extinction_db must be >= 0 (or None for ideal)")
        return out

    def polarization_config(self):
        """The :class:`~repro.optics.polarstack.PolarStackConfig` these
        knobs describe — ``None`` on the scalar ``"malus"`` rung."""
        if self.fidelity == "malus":
            return None
        from repro.lcm.dispersion import LCDispersionModel
        from repro.optics.polarstack import (
            SPECTRUM_PRESETS,
            PolarizerSpec,
            PolarStackConfig,
        )

        polarizer = (
            PolarizerSpec.ideal()
            if self.extinction_db is None
            else PolarizerSpec.from_db(self.extinction_db)
        )
        return PolarStackConfig(
            spectral=SPECTRUM_PRESETS[self.spectrum](),
            tag_polarizer=polarizer,
            reader_polarizer=polarizer,
            dispersion=LCDispersionModel(temperature_c=self.temperature_c),
        )


@dataclass(frozen=True)
class MobilityKnobs:
    """Constant-rate roll drift with mid-packet re-sync (the §8 study)."""

    roll_rate_deg_s: float = 0.0
    sync_interval_slots: int = 64
    resync: bool = True

    def problems(self) -> list[str]:
        out = []
        if self.sync_interval_slots < 1:
            out.append("sync_interval_slots must be >= 1")
        return out


@dataclass(frozen=True)
class TrajectoryKnobs:
    """Waypoint-path mobility: which trajectory, and the packet cadence.

    ``trajectory`` is either a preset name from
    :data:`repro.channel.trajectory.TRAJECTORY_PRESETS` or a full
    :class:`~repro.channel.trajectory.Trajectory` object;
    :meth:`resolve` returns the object either way.
    ``packet_interval_s`` is the idle gap between packet captures — it
    sets how far along the path consecutive packets land.
    """

    trajectory: str | Trajectory = "wearable_pedestrian"
    packet_interval_s: float = 0.05
    sync_interval_slots: int = 64
    resync: bool = True

    def problems(self) -> list[str]:
        out = []
        if isinstance(self.trajectory, str):
            if self.trajectory not in trajectory_names():
                out.append(
                    f"trajectory {self.trajectory!r} not in {trajectory_names()}"
                )
        elif not isinstance(self.trajectory, Trajectory):
            out.append(
                "trajectory must be a preset name or a Trajectory, got "
                f"{type(self.trajectory).__name__}"
            )
        if self.packet_interval_s < 0:
            out.append("packet_interval_s must be >= 0")
        if self.sync_interval_slots < 1:
            out.append("sync_interval_slots must be >= 1")
        return out

    def resolve(self) -> Trajectory:
        """The trajectory object (preset names are built fresh)."""
        if isinstance(self.trajectory, str):
            return named_trajectory(self.trajectory)
        return self.trajectory

    def describe(self) -> dict:
        """JSON-ready content — embeds the *full* trajectory geometry so
        a journal fingerprint changes whenever the path does."""
        return {
            "trajectory": self.resolve().describe(),
            "packet_interval_s": self.packet_interval_s,
            "sync_interval_slots": self.sync_interval_slots,
            "resync": self.resync,
        }


@dataclass(frozen=True)
class MacKnobs:
    """Analytic MAC models: frame success odds and retry budgets."""

    success_probability: float | None = None
    max_attempts: int = 8
    fail_threshold: int = 3

    def problems(self) -> list[str]:
        out = []
        if self.success_probability is not None and not (
            0.0 <= self.success_probability <= 1.0
        ):
            out.append("success_probability must be in [0, 1]")
        if self.max_attempts < 1:
            out.append("max_attempts must be >= 1")
        if self.fail_threshold < 1:
            out.append("fail_threshold must be >= 1")
        return out


@dataclass(frozen=True)
class StreamKnobs:
    """Chunk-fed streaming delivery: chunk size and buffering bound."""

    chunk_samples: int = 256
    max_buffered_samples: int | None = None

    def problems(self) -> list[str]:
        out = []
        if self.chunk_samples < 1:
            out.append("chunk_samples must be >= 1")
        if self.max_buffered_samples is not None and self.max_buffered_samples < 1:
            out.append("max_buffered_samples must be >= 1 (or None)")
        return out
