"""The v2 :class:`ScenarioSpec`: shared link fields + nested knob groups.

v1 was a single flat dataclass; every kind's private knobs shared one
namespace, and a knob set on the wrong kind was silently ignored.  v2
keeps the six fields every harness reads (``kind``, ``rate_bps``,
``distance_m``, ``payload_bytes``, ``k_branches``, ``seed``) at the top
level and moves everything else into per-kind groups::

    from repro.api import PhyKnobs, ScenarioSpec, TrajectoryKnobs

    ScenarioSpec(kind="packet", distance_m=3.0, phy=PhyKnobs(roll_deg=25.0))
    ScenarioSpec(kind="trajectory",
                 trajectory=TrajectoryKnobs("drive_by_reader",
                                            packet_interval_s=0.02))

Compatibility: the old flat keyword form (``ScenarioSpec(roll_deg=25.0)``)
still works — the constructor maps flat knobs into the active kind's
group and emits one ``DeprecationWarning`` per process.  A flat knob that
belongs to a group the active kind does not use is a validation error
(reported alongside every other violation), where v1 silently accepted
it.  ``describe()`` output is byte-identical to v1 for every v1 kind, so
no sweep-journal fingerprint moves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.api.knobs import (
    MacKnobs,
    MobilityKnobs,
    PhyKnobs,
    StreamKnobs,
    TrajectoryKnobs,
)
from repro.channel.trajectory import Trajectory
from repro.obs import ensure_observer
from repro.utils.deprecation import warn_once

__all__ = ["KIND_GROUPS", "SCENARIO_KINDS", "ScenarioSpec"]

#: Scenario families the facade can run (each maps to one harness).
SCENARIO_KINDS = ("packet", "mobility", "trajectory", "arq", "watchdog", "stream")

#: Which knob groups each kind consumes.  Anything else is rejected.
KIND_GROUPS: dict[str, tuple[str, ...]] = {
    "packet": ("phy",),
    "stream": ("phy", "stream"),
    "mobility": ("mobility",),
    "trajectory": ("trajectory",),
    "arq": ("mac",),
    "watchdog": ("mac",),
}

_GROUP_TYPES = {
    "phy": PhyKnobs,
    "mobility": MobilityKnobs,
    "trajectory": TrajectoryKnobs,
    "mac": MacKnobs,
    "stream": StreamKnobs,
}

#: Legacy flat knob -> the group(s) that own it (two groups share the
#: re-sync knobs; the active kind disambiguates).
_FLAT_KNOBS: dict[str, tuple[str, ...]] = {
    "roll_deg": ("phy",),
    "yaw_deg": ("phy",),
    "bank_mode": ("phy",),
    "ambient": ("phy",),
    "fidelity": ("phy",),
    "spectrum": ("phy",),
    "extinction_db": ("phy",),
    "temperature_c": ("phy",),
    "roll_rate_deg_s": ("mobility",),
    "packet_interval_s": ("trajectory",),
    "sync_interval_slots": ("mobility", "trajectory"),
    "resync": ("mobility", "trajectory"),
    "success_probability": ("mac",),
    "max_attempts": ("mac",),
    "fail_threshold": ("mac",),
    "chunk_samples": ("stream",),
    "max_buffered_samples": ("stream",),
}

_SHARED_FIELDS = ("kind", "rate_bps", "distance_m", "payload_bytes", "k_branches", "seed")
_GROUP_FIELDS = tuple(_GROUP_TYPES)


@dataclass(frozen=True, init=False)
class ScenarioSpec:
    """A validated, self-describing experimental condition (v2 shape).

    Shared fields apply to every kind; per-kind knobs live in the nested
    groups (:data:`KIND_GROUPS` says which kind reads which).  Unknown
    keywords are a ``TypeError``; every value violation — the spec's own,
    each group's, and any knob aimed at an inactive group — is collected
    and raised as one ``ValueError``.
    """

    kind: str = "packet"
    rate_bps: float = 8000.0
    distance_m: float = 2.0
    payload_bytes: int = 24
    k_branches: int = 16
    seed: int = 7
    phy: PhyKnobs | None = None
    mobility: MobilityKnobs | None = None
    trajectory: TrajectoryKnobs | None = None
    mac: MacKnobs | None = None
    stream: StreamKnobs | None = None

    def __init__(
        self,
        kind: str = "packet",
        *,
        rate_bps: float = 8000.0,
        distance_m: float = 2.0,
        payload_bytes: int = 24,
        k_branches: int = 16,
        seed: int = 7,
        phy: PhyKnobs | None = None,
        mobility: MobilityKnobs | None = None,
        trajectory: TrajectoryKnobs | Trajectory | str | None = None,
        mac: MacKnobs | None = None,
        stream: StreamKnobs | None = None,
        **flat,
    ):
        unknown = [k for k in flat if k not in _FLAT_KNOBS]
        if unknown:
            raise TypeError(
                "ScenarioSpec() got an unexpected keyword argument "
                f"{unknown[0]!r}"
            )
        if flat:
            warn_once(
                "ScenarioSpec.flat_kwargs",
                "flat ScenarioSpec knob kwargs are deprecated; pass nested "
                "knob groups instead (e.g. phy=PhyKnobs(roll_deg=...), "
                "mac=MacKnobs(success_probability=...))",
            )
        problems: list[str] = []
        if kind not in SCENARIO_KINDS:
            problems.append(f"kind {kind!r} not in {SCENARIO_KINDS}")
        active = KIND_GROUPS.get(kind, ())

        # v2 convenience: kind="trajectory" accepts a bare trajectory
        # (preset name or Trajectory object) where the group would go.
        if isinstance(trajectory, (str, Trajectory)):
            trajectory = TrajectoryKnobs(trajectory=trajectory)

        groups: dict[str, object | None] = {
            "phy": phy,
            "mobility": mobility,
            "trajectory": trajectory,
            "mac": mac,
            "stream": stream,
        }
        for name, value in groups.items():
            if value is None:
                continue
            expected = _GROUP_TYPES[name]
            if not isinstance(value, expected):
                problems.append(
                    f"{name} must be {expected.__name__}, got {type(value).__name__}"
                )
                groups[name] = None
            elif name not in active:
                problems.append(f"{name} knobs are not available for kind={kind!r}")
                groups[name] = None

        # Route legacy flat knobs into the active kind's group.
        overrides: dict[str, dict] = {}
        for key, value in flat.items():
            owners = _FLAT_KNOBS[key]
            owner = next((g for g in owners if g in active), None)
            if owner is None:
                names = " or ".join(_GROUP_TYPES[g].__name__ for g in owners)
                problems.append(
                    f"{key!r} belongs to {names} and is not available for "
                    f"kind={kind!r}"
                )
                continue
            overrides.setdefault(owner, {})[key] = value

        for name in active:
            base = groups[name] if groups[name] is not None else _GROUP_TYPES[name]()
            if name in overrides:
                base = _dc_replace(base, **overrides[name])
            groups[name] = base

        # ----------------------------------------------------- validation
        if rate_bps <= 0:
            problems.append("rate_bps must be positive")
        if distance_m <= 0:
            problems.append("distance_m must be positive")
        if payload_bytes < 1:
            problems.append("payload_bytes must be >= 1")
        if k_branches < 1:
            problems.append("k_branches must be >= 1")
        for name in active:
            group = groups[name]
            if group is not None:
                problems.extend(group.problems())
        if kind in ("arq", "watchdog"):
            mac_group = groups["mac"]
            if mac_group is not None and mac_group.success_probability is None:
                problems.append(f"kind={kind!r} requires success_probability")
        if problems:
            raise ValueError("invalid ScenarioSpec: " + "; ".join(problems))

        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "rate_bps", rate_bps)
        object.__setattr__(self, "distance_m", distance_m)
        object.__setattr__(self, "payload_bytes", payload_bytes)
        object.__setattr__(self, "k_branches", k_branches)
        object.__setattr__(self, "seed", seed)
        for name in _GROUP_FIELDS:
            object.__setattr__(self, name, groups[name])

    # -------------------------------------------------- flat read access
    # v1 exposed every knob as a top-level attribute; keep reads working
    # (values come from the active group, or that group's default).

    @property
    def roll_deg(self) -> float:
        return (self.phy or PhyKnobs()).roll_deg

    @property
    def yaw_deg(self) -> float:
        return (self.phy or PhyKnobs()).yaw_deg

    @property
    def bank_mode(self) -> str:
        return (self.phy or PhyKnobs()).bank_mode

    @property
    def ambient(self) -> str | None:
        return (self.phy or PhyKnobs()).ambient

    @property
    def roll_rate_deg_s(self) -> float:
        return (self.mobility or MobilityKnobs()).roll_rate_deg_s

    @property
    def sync_interval_slots(self) -> int:
        group = self.mobility if self.mobility is not None else self.trajectory
        return group.sync_interval_slots if group is not None else 64

    @property
    def resync(self) -> bool:
        group = self.mobility if self.mobility is not None else self.trajectory
        return group.resync if group is not None else True

    @property
    def packet_interval_s(self) -> float:
        return (self.trajectory or TrajectoryKnobs()).packet_interval_s

    @property
    def success_probability(self) -> float | None:
        return (self.mac or MacKnobs()).success_probability

    @property
    def max_attempts(self) -> int:
        return (self.mac or MacKnobs()).max_attempts

    @property
    def fail_threshold(self) -> int:
        return (self.mac or MacKnobs()).fail_threshold

    @property
    def chunk_samples(self) -> int:
        return (self.stream or StreamKnobs()).chunk_samples

    @property
    def max_buffered_samples(self) -> int | None:
        return (self.stream or StreamKnobs()).max_buffered_samples

    # ------------------------------------------------------------ describe

    def describe(self) -> dict:
        """The spec as a JSON-ready dict (the report's ``scenario`` block).

        Only the fields that matter for :attr:`kind` are included, so two
        specs describing the same physical condition render identically.
        For every v1 kind the output is byte-identical to the v1 flat
        spec's — frozen sweep-journal fingerprints do not move.
        """
        base = {"kind": self.kind, "seed": self.seed}
        if self.kind in ("packet", "mobility", "stream"):
            base.update(
                rate_bps=self.rate_bps,
                distance_m=self.distance_m,
                payload_bytes=self.payload_bytes,
                k_branches=self.k_branches,
            )
        if self.kind in ("packet", "stream"):
            phy = self.phy or PhyKnobs()
            base.update(
                roll_deg=phy.roll_deg,
                yaw_deg=phy.yaw_deg,
                bank_mode=phy.bank_mode,
                ambient=phy.ambient,
            )
            # Polarization-ladder knobs appear only off the default rung:
            # every pre-ladder describe() fingerprint stays byte-identical.
            if phy.fidelity != "malus":
                base.update(
                    fidelity=phy.fidelity,
                    spectrum=phy.spectrum,
                    extinction_db=phy.extinction_db,
                    temperature_c=phy.temperature_c,
                )
        if self.kind == "stream":
            stream = self.stream or StreamKnobs()
            base.update(
                chunk_samples=stream.chunk_samples,
                max_buffered_samples=stream.max_buffered_samples,
            )
        if self.kind == "mobility":
            mob = self.mobility or MobilityKnobs()
            base.update(
                roll_rate_deg_s=mob.roll_rate_deg_s,
                sync_interval_slots=mob.sync_interval_slots,
                resync=mob.resync,
            )
        if self.kind == "trajectory":
            base.update(
                rate_bps=self.rate_bps,
                payload_bytes=self.payload_bytes,
                k_branches=self.k_branches,
            )
            base.update((self.trajectory or TrajectoryKnobs()).describe())
        if self.kind in ("arq", "watchdog"):
            mac = self.mac or MacKnobs()
            base.update(
                success_probability=mac.success_probability,
                max_attempts=mac.max_attempts,
            )
        if self.kind == "watchdog":
            base["fail_threshold"] = self.fail_threshold
        return base

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with fields changed (re-validated).

        Accepts shared fields, group objects, and legacy flat knob names
        (routed into the active group, like the constructor).
        """
        current: dict = {name: getattr(self, name) for name in _SHARED_FIELDS}
        current.update({name: getattr(self, name) for name in _GROUP_FIELDS})
        for key, value in changes.items():
            if key in current or key in _FLAT_KNOBS:
                current[key] = value
            else:
                raise TypeError(f"ScenarioSpec.replace() got unknown field {key!r}")
        # Changing kind drops groups the new kind does not read.
        active = KIND_GROUPS.get(current["kind"], ())
        for name in _GROUP_FIELDS:
            if name in current and name not in active and name not in changes:
                current[name] = None
        return ScenarioSpec(**current)

    # --------------------------------------------------------------- build

    def build(self, observer=None):
        """The underlying harness object for this spec's kind."""
        observer = ensure_observer(observer)
        if self.kind in ("packet", "stream"):
            from repro.experiments.common import _make_simulator
            from repro.optics.ambient import AMBIENT_PRESETS

            phy = self.phy or PhyKnobs()
            return _make_simulator(
                rate_bps=self.rate_bps,
                distance_m=self.distance_m,
                roll_deg=phy.roll_deg,
                yaw_deg=phy.yaw_deg,
                ambient=AMBIENT_PRESETS[phy.ambient] if phy.ambient else None,
                payload_bytes=self.payload_bytes,
                bank_mode=phy.bank_mode,
                k_branches=self.k_branches,
                rng=self.seed,
                observer=observer,
                fidelity=phy.fidelity,
                polarization=phy.polarization_config(),
            )
        if self.kind == "mobility":
            import numpy as np

            from repro.channel.dynamics import ChannelDrift
            from repro.experiments.mobility import MobileLinkSimulator

            mob = self.mobility or MobilityKnobs()
            return MobileLinkSimulator(
                distance_m=self.distance_m,
                drift=ChannelDrift(
                    roll_rate_rad_s=float(np.deg2rad(mob.roll_rate_deg_s))
                ),
                payload_bytes=self.payload_bytes,
                sync_interval_slots=mob.sync_interval_slots,
                resync=mob.resync,
                k_branches=self.k_branches,
                rng=self.seed,
                observer=observer,
            )
        if self.kind == "trajectory":
            from repro.experiments.mobility import MobileLinkSimulator

            traj = self.trajectory or TrajectoryKnobs()
            return MobileLinkSimulator(
                trajectory=traj.resolve(),
                payload_bytes=self.payload_bytes,
                sync_interval_slots=traj.sync_interval_slots,
                resync=traj.resync,
                k_branches=self.k_branches,
                packet_interval_s=traj.packet_interval_s,
                rng=self.seed,
                observer=observer,
            )
        if self.kind == "arq":
            from repro.mac.arq import StopAndWaitARQ

            return StopAndWaitARQ(max_attempts=self.max_attempts)
        # watchdog
        from repro.mac.watchdog import LinkWatchdog

        return LinkWatchdog(fail_threshold=self.fail_threshold, observer=observer)
