"""The unified run API: one validated spec, one entry point, one artifact.

::

    from repro.api import PhyKnobs, ScenarioSpec, Session

    spec = ScenarioSpec(kind="packet", distance_m=3.0,
                        phy=PhyKnobs(roll_deg=25.0))
    report = Session(spec).run(n_packets=10)
    print(report.summary["ber"], sorted(report.metric_names()))
    report.write("run.json")            # schema-validated RunReport

* :class:`ScenarioSpec` (v2) keeps the shared link fields flat and nests
  everything kind-private in knob groups (:mod:`repro.api.knobs`); the
  v1 flat keyword form still constructs (warn-once) with byte-identical
  ``describe()`` output.
* :class:`Session` owns an :class:`~repro.obs.Observer` and returns a
  :class:`~repro.obs.RunReport`.
* :data:`SCENARIO_CATALOG` names ready-to-run trajectory scenarios
  (:func:`named_scenario`).
"""

from repro.api.catalog import SCENARIO_CATALOG, named_scenario, scenario_catalog_names
from repro.api.knobs import (
    MacKnobs,
    MobilityKnobs,
    PhyKnobs,
    StreamKnobs,
    TrajectoryKnobs,
)
from repro.api.session import Session, trajectory_summary
from repro.api.spec import KIND_GROUPS, SCENARIO_KINDS, ScenarioSpec

__all__ = [
    "KIND_GROUPS",
    "MacKnobs",
    "MobilityKnobs",
    "PhyKnobs",
    "SCENARIO_CATALOG",
    "SCENARIO_KINDS",
    "ScenarioSpec",
    "Session",
    "StreamKnobs",
    "TrajectoryKnobs",
    "named_scenario",
    "scenario_catalog_names",
    "trajectory_summary",
]
