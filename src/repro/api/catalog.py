"""The scenario catalog: named, ready-to-run trajectory scenarios.

Each entry pairs a trajectory preset from
:mod:`repro.channel.trajectory` with the link/MAC knobs that make the
scenario realistic — packet cadence matched to how fast the pose
changes, payload sized to the dwell time — as a complete
``kind="trajectory"`` :class:`~repro.api.ScenarioSpec`::

    from repro.api import Session, named_scenario

    report = Session(named_scenario("drive_by_reader")).run(n_packets=8)
    print(report.summary["goodput_bps"])

or from the shell::

    retroturbo scenario list
    retroturbo scenario run drive_by_reader --packets 8

(The name ``named_scenario`` avoids colliding with ``repro.scenario``,
which builds *fault* scenarios from :mod:`repro.faults`.)
"""

from __future__ import annotations

from collections.abc import Callable

from repro.api.knobs import TrajectoryKnobs
from repro.api.spec import ScenarioSpec

__all__ = ["SCENARIO_CATALOG", "named_scenario", "scenario_catalog_names"]


def _warehouse_shelf_scan() -> ScenarioSpec:
    """Handheld reader panned slowly along a shelf: generous dwell in
    front of the tag, so larger payloads survive the pan."""
    return ScenarioSpec(
        kind="trajectory",
        payload_bytes=16,
        k_branches=8,
        seed=11,
        trajectory=TrajectoryKnobs(
            trajectory="warehouse_shelf_scan", packet_interval_s=0.25
        ),
    )


def _wearable_pedestrian() -> ScenarioSpec:
    """Wearable tag on a pedestrian crossing a doorway reader: short
    packets at a brisk cadence inside the ~0.9 s crossing window."""
    return ScenarioSpec(
        kind="trajectory",
        payload_bytes=8,
        k_branches=16,
        seed=23,
        trajectory=TrajectoryKnobs(
            trajectory="wearable_pedestrian",
            packet_interval_s=0.05,
            sync_interval_slots=16,
        ),
    )


def _drive_by_reader() -> ScenarioSpec:
    """Vehicle tag interrogated at 6 m/s: minimal payloads, tight packet
    spacing, aggressive re-sync — the usable window is a fraction of a
    second around boresight."""
    return ScenarioSpec(
        kind="trajectory",
        payload_bytes=6,
        k_branches=8,
        seed=31,
        trajectory=TrajectoryKnobs(
            trajectory="drive_by_reader",
            packet_interval_s=0.02,
            sync_interval_slots=32,
        ),
    )


def _crowded_room_occlusion() -> ScenarioSpec:
    """Near-static tag behind intermittent bodies: normal payloads on a
    relaxed cadence, riding through the scheduled blockages."""
    return ScenarioSpec(
        kind="trajectory",
        payload_bytes=16,
        k_branches=8,
        seed=41,
        trajectory=TrajectoryKnobs(
            trajectory="crowded_room_occlusion", packet_interval_s=0.4
        ),
    )


SCENARIO_CATALOG: dict[str, Callable[[], ScenarioSpec]] = {
    "warehouse_shelf_scan": _warehouse_shelf_scan,
    "wearable_pedestrian": _wearable_pedestrian,
    "drive_by_reader": _drive_by_reader,
    "crowded_room_occlusion": _crowded_room_occlusion,
}
"""Named scenario factories — trajectory presets with tuned link knobs."""


def scenario_catalog_names() -> list[str]:
    """The named scenarios, sorted."""
    return sorted(SCENARIO_CATALOG)


def named_scenario(name: str) -> ScenarioSpec:
    """Build the named catalog scenario (fresh spec each call)."""
    try:
        factory = SCENARIO_CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {scenario_catalog_names()}"
        ) from None
    return factory()
