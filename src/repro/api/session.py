"""One observed run of a :class:`~repro.api.ScenarioSpec`."""

from __future__ import annotations

import numpy as np

from repro.api.spec import ScenarioSpec
from repro.obs import Observer, RunReport, use_observer
from repro.utils.rng import ensure_rng

__all__ = ["Session", "trajectory_summary"]


def trajectory_summary(sim, n_packets: int, gen) -> dict:
    """Run ``n_packets`` along ``sim``'s trajectory and summarise.

    Shared between :meth:`Session.run` and the ``trajectory_study`` sweep
    task so both produce identical rows for identical inputs.  Consumes
    only ``gen`` (one payload draw + one noise stream per packet); any
    observer metrics ride alongside without touching the RNG.
    """
    bers, crcs = zip(*(sim._run_packet(rng=gen) for _ in range(n_packets)))
    n_ok = int(sum(crcs))
    sim_time_s = float(sim.t_s)
    goodput_bps = (
        8.0 * sim.frame.payload_bytes * n_ok / sim_time_s if sim_time_s > 0 else 0.0
    )
    return {
        "ber": float(np.mean(bers)),
        "crc_ok_rate": n_ok / n_packets,
        "goodput_bps": goodput_bps,
        "n_packets": n_packets,
        "sim_time_s": sim_time_s,
        "trajectory": sim.trajectory.name,
        "trajectory_duration_s": sim.trajectory.duration_s,
    }


class Session:
    """One observed run of a :class:`ScenarioSpec`.

    The session installs its observer as the *ambient* observer for the
    duration of :meth:`run`, so every instrumented layer underneath —
    receiver stages, DFE, training solves, MAC outcomes — records into
    the same registry and span forest, which :meth:`run` returns as a
    :class:`~repro.obs.RunReport`.
    """

    def __init__(self, spec: ScenarioSpec, observer: Observer | None = None):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"Session needs a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self.observer = observer if observer is not None else Observer()
        if not self.observer.enabled:
            raise ValueError("Session requires an enabled Observer (it emits a RunReport)")

    def run(self, n_packets: int = 4, rng=None) -> RunReport:
        """Run ``n_packets`` packets (frames, for the MAC kinds).

        Returns the :class:`~repro.obs.RunReport`; write it with
        ``report.write(path)`` or inspect ``report.summary`` directly.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        obs = self.observer
        runner = getattr(self, f"_run_{self.spec.kind}")
        with use_observer(obs):
            with obs.span("session", kind=self.spec.kind, n_packets=n_packets):
                summary = runner(n_packets, rng)
        return obs.run_report(self.spec.kind, scenario=self.spec.describe(), summary=summary)

    def stream(self, n_packets: int = 4, rng=None, chunk_samples: int | None = None):
        """Generator over live streaming decodes (``kind="stream"`` only).

        Synthesizes ``n_packets`` captures through the spec's link, feeds
        each to a :class:`~repro.phy.streaming.StreamingReceiver` in
        ``chunk_samples``-sized chunks, and yields ``(capture, output)``
        pairs — the :class:`~repro.phy.pipeline.CaptureSpec` (ground
        truth: sent payload, true offset) alongside each
        :class:`~repro.phy.receiver.ReceiverOutput` as it is emitted.
        The session observer is ambient for the duration, so
        ``stream.*`` gauges and the usual ``phy.*`` metrics accumulate in
        its registry; call :meth:`run` instead for a summarised report.
        """
        if self.spec.kind != "stream":
            raise ValueError(f"Session.stream() needs kind='stream', got {self.spec.kind!r}")
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        size = self.spec.chunk_samples if chunk_samples is None else int(chunk_samples)
        if size < 1:
            raise ValueError("chunk_samples must be >= 1")
        obs = self.observer
        with use_observer(obs):
            sim = self.spec.build(obs)
            gen = ensure_rng(self.spec.seed + 1 if rng is None else rng)
            for _ in range(n_packets):
                cap = sim.make_capture(rng=gen)
                rx = sim.make_streaming_receiver(
                    search_stop=cap.search_stop,
                    max_buffered_samples=self.spec.max_buffered_samples,
                    observer=obs,
                )
                for lo in range(0, cap.samples.size, size):
                    for out in rx.push(cap.samples[lo : lo + size]):
                        yield cap, out
                for out in rx.close():
                    yield cap, out

    # ------------------------------------------------------- kind runners

    def _run_stream(self, n_packets: int, rng) -> dict:
        from repro.utils.bits import bit_errors, bytes_to_bits

        outputs = []
        errors = bits = 0
        for cap, out in self.stream(n_packets=n_packets, rng=rng):
            outputs.append(out)
            sent = bytes_to_bits(cap.payload)
            if out.crc_ok and out.payload:
                errors += int(bit_errors(sent, bytes_to_bits(out.payload)))
            else:
                errors += sent.size
            bits += sent.size
        n_ok = sum(1 for out in outputs if out.crc_ok)
        return {
            "ber": errors / bits if bits else 0.0,
            "crc_ok_rate": n_ok / len(outputs) if outputs else 0.0,
            "n_packets": len(outputs),
            "n_bits": bits,
            "chunk_samples": self.spec.chunk_samples,
        }

    def _run_packet(self, n_packets: int, rng) -> dict:
        sim = self.spec.build(self.observer)
        m = sim.measure_ber(
            n_packets=n_packets, rng=self.spec.seed + 1 if rng is None else rng
        )
        return {
            "ber": m.ber,
            "packet_error_rate": m.packet_error_rate,
            "detection_rate": m.detection_rate,
            "n_packets": m.n_packets,
            "n_bits": m.n_bits,
            "snr_db": sim.link.effective_snr_db(),
        }

    def _run_mobility(self, n_packets: int, rng) -> dict:
        sim = self.spec.build(self.observer)
        gen = ensure_rng(self.spec.seed + 1 if rng is None else rng)
        bers, crcs = zip(*(sim._run_packet(rng=gen) for _ in range(n_packets)))
        return {
            "ber": float(np.mean(bers)),
            "crc_ok_rate": float(np.mean(crcs)),
            "n_packets": n_packets,
        }

    def _run_trajectory(self, n_packets: int, rng) -> dict:
        sim = self.spec.build(self.observer)
        gen = ensure_rng(self.spec.seed + 1 if rng is None else rng)
        return trajectory_summary(sim, n_packets, gen)

    def _run_arq(self, n_frames: int, rng) -> dict:
        arq = self.spec.build(self.observer)
        stats = arq._simulate(
            self.spec.success_probability,
            n_frames,
            rng=self.spec.seed if rng is None else rng,
        )
        return {
            "delivered": stats.delivered,
            "gave_up": stats.gave_up,
            "attempts": stats.attempts,
            "mean_attempts": stats.mean_attempts,
            "efficiency": stats.efficiency(),
            "expected_attempts": arq.expected_attempts(self.spec.success_probability),
        }

    def _run_watchdog(self, n_frames: int, rng) -> dict:
        from repro.mac.arq import StopAndWaitARQ

        dog = self.spec.build(self.observer)
        stats = dog._simulate(
            lambda rate: self.spec.success_probability,
            n_frames,
            arq=StopAndWaitARQ(max_attempts=self.spec.max_attempts),
            rng=self.spec.seed if rng is None else rng,
        )
        return {
            "delivered": stats.delivered,
            "gave_up": stats.gave_up,
            "attempts": stats.attempts,
            "total_backoff_s": stats.total_backoff_s,
            "final_rate_bps": stats.final_rate_bps,
        }
