"""End-to-end packet simulation: the workhorse behind every BER experiment.

``PacketSimulator`` wires together a (heterogeneous) tag array, the optical
link, and the full receiver pipeline, and measures bit error rates the way
the paper does (§7.1: 30 packets of 128 bytes per data point; a link is
"reliable" below 1% BER).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import OpticalLink
from repro.errors import FailureReason, StageEvent
from repro.faults.plan import FaultContext, FaultPlan
from repro.lcm.array import LCMArray
from repro.lcm.heterogeneity import HeterogeneityModel
from repro.modem.config import ModemConfig
from repro.modem.references import ReferenceBank
from repro.obs import ensure_observer
from repro.phy.frame import FrameFormat
from repro.phy.receiver import PhyReceiver
from repro.phy.transmitter import PhyTransmitter
from repro.training.offline import OfflineTrainer
from repro.utils.bits import bit_errors, bytes_to_bits
from repro.utils.deprecation import warn_once
from repro.utils.opcache import fingerprint, fingerprint_array, fingerprint_config, resolve_opcache
from repro.utils.rng import ensure_rng

__all__ = ["CaptureSpec", "PacketResult", "PacketSimulator", "measure_ber"]


@dataclass
class CaptureSpec:
    """One synthesized reader capture, ready for any receive front-end.

    ``samples`` is exactly what :meth:`PacketSimulator._run_packet` hands
    the batch receiver; ``search_stop`` the preamble window it pairs with.
    The streaming receiver consumes the same capture chunk-wise.
    """

    samples: np.ndarray
    payload: bytes
    search_stop: int
    offset: int
    link_snr_db: float


@dataclass
class PacketResult:
    """Outcome of one simulated packet.

    A lost packet (undetected, truncated, demodulator failure) is scored
    as *all bits errored* and carries the receiver's classified
    ``failure`` — it is never silently scored against fabricated padding.
    """

    ber: float
    n_bit_errors: int
    n_bits: int
    detected: bool
    crc_ok: bool
    snr_link_db: float
    snr_est_db: float
    equalizer_mse: float
    failure: FailureReason | None = None
    events: list[StageEvent] = field(repr=False, default_factory=list)

    @property
    def lost(self) -> bool:
        """True when no payload was recovered at all."""
        return self.n_bit_errors == self.n_bits and not self.crc_ok


@dataclass
class BERMeasurement:
    """Aggregate over a batch of packets (one experiment data point)."""

    ber: float
    n_packets: int
    n_bits: int
    n_bit_errors: int
    packet_error_rate: float
    detection_rate: float
    mean_snr_est_db: float
    results: list[PacketResult] = field(repr=False, default_factory=list)

    @property
    def reliable(self) -> bool:
        """The paper's reliability criterion: BER below 1%."""
        return self.ber < 0.01


class PacketSimulator:
    """A configured tag + link + reader, ready to push packets through.

    Parameters
    ----------
    config:
        Modem operating point.
    link:
        Channel (geometry, budget, ambient, mobility, front-end).
    heterogeneity:
        Pixel spread of the tag under test.
    payload_bytes / preamble_slots / training_rounds:
        Frame sizing (defaults are sim-friendly; the paper's timing is
        available through ``FrameFormat.paper_default``).
    bank_mode:
        ``"trained"`` (offline KL bases + per-packet online training, the
        paper's receiver), ``"nominal"`` (offline reference only — the
        ablation of Fig 16c/17b), or ``"genie"`` (exact per-pixel
        references, perfect-knowledge upper bound).
    n_bases:
        KL basis count S for ``"trained"`` mode.
    k_branches:
        DFE beam width.
    fault_plan:
        Optional :class:`repro.faults.plan.FaultPlan`.  Tag-stage injectors
        (dead/stuck pixels) mutate the tag once at construction; capture-
        stage injectors impair every packet's sample stream before the
        receiver sees it.
    hardened:
        Passed through to :class:`repro.phy.receiver.PhyReceiver`; disable
        to run the original fragile receiver (for ablation/regression
        comparisons).
    observer:
        Optional :class:`repro.obs.Observer`; when given, every packet
        records per-stage spans and the metric series catalogued in
        DESIGN.md §9.  ``None`` (default) is the no-op singleton.
    fidelity / polarization:
        Polarization rung of the *tag under test* (see
        :class:`repro.lcm.array.LCMArray`): ``"malus"`` (default, the
        frozen paper model), ``"jones"`` or ``"stokes"`` with an optional
        ``PolarStackConfig``.  The reader's nominal references always
        assume the Malus model — running a higher rung therefore measures
        the emulation error a real reader would suffer against dispersive,
        leaky hardware.
    rng:
        Seeds the tag's heterogeneity draw and yaw illumination spread.
    opcache:
        Operating-point artifact cache (:mod:`repro.utils.opcache`).
        ``True`` (default) shares the process-global cache — repeated
        simulators at the same operating point reuse unit tables, the TX
        prefix waveform, the preamble reference, and the training
        factorization.  ``False``/``None`` disables caching; an
        :class:`~repro.utils.opcache.OpCache` instance scopes it.  Results
        are bit-identical either way (keys are content fingerprints and
        cached artifacts are replayed, not approximated).
    """

    def __init__(
        self,
        config: ModemConfig | None = None,
        link: OpticalLink | None = None,
        heterogeneity: HeterogeneityModel | None = None,
        payload_bytes: int = 32,
        preamble_slots: int | None = None,
        training_rounds: int | None = None,
        bank_mode: str = "trained",
        n_bases: int = 2,
        k_branches: int = 16,
        codec=None,
        fault_plan: FaultPlan | None = None,
        hardened: bool = True,
        observer=None,
        rng: np.random.Generator | int | None = None,
        opcache=True,
        fidelity: str = "malus",
        polarization=None,
    ):
        if bank_mode not in ("trained", "nominal", "genie"):
            raise ValueError(f"unknown bank_mode {bank_mode!r}")
        gen = ensure_rng(rng)
        self._obs = ensure_observer(observer)
        self._opcache = resolve_opcache(opcache)
        self.config = config or ModemConfig()
        if link is None:
            from repro.optics.geometry import LinkGeometry

            link = OpticalLink(geometry=LinkGeometry(distance_m=2.0))
        self.link = link
        self.bank_mode = bank_mode
        self.fault_plan = fault_plan
        het = heterogeneity if heterogeneity is not None else HeterogeneityModel()

        # --- tag under test (heterogeneous, yaw-perturbed) ---------------
        self.array = LCMArray.build(
            groups_per_channel=self.config.dsm_order,
            levels_per_group=self.config.levels_per_axis,
            heterogeneity=het,
            rng=gen,
            fidelity=fidelity,
            polarization=polarization,
        )
        yaw_gains = link.geometry.sample_yaw_pixel_gains(self.array.n_pixels, gen)
        for pixel, g in zip(self.array.pixels, yaw_gains):
            pixel.gain *= float(g)
        # Permanent tag hardware defects (dead/stuck pixels) apply here so
        # the transmitter and any genie bank see the faulted hardware.
        if fault_plan is not None:
            pre_fault_fp = (
                fingerprint_array(self.array) if self._opcache is not None else None
            )
            fault_plan.apply_tag(self.array, gen)
            if self._opcache is not None:
                # Content keys already make stale hits impossible; this
                # sweeps the pre-fault array's artifacts out of capacity.
                self._opcache.invalidate(token=pre_fault_fp)
        # Rebuild the cached amplitude vectors after mutating gains.  The
        # fidelity rung rides along; params are already temperature-scaled
        # by build(), so re-wrapping never double-scales.
        self.array = LCMArray(
            self.array.groups,
            params=self.array.params,
            fidelity=self.array.fidelity,
            polarization=self.array.polarization,
        )

        self.frame = FrameFormat(
            self.config,
            payload_bytes=payload_bytes,
            preamble_slots=preamble_slots,
            training_rounds=training_rounds,
            codec=codec,
        )
        self.transmitter = PhyTransmitter(self.frame, self.array, opcache=self._opcache)

        # --- reader-side offline artifacts (nominal tag) ------------------
        nominal_array = LCMArray.build(
            groups_per_channel=self.config.dsm_order,
            levels_per_group=self.config.levels_per_axis,
        )
        from repro.modem.dsm_pqam import DsmPqamModulator

        nominal_modulator = DsmPqamModulator(self.config, nominal_array)

        offline = OfflineTrainer(self.config, observer=self._obs, opcache=self._opcache)
        if bank_mode == "trained" and n_bases > 1:
            scales = [0.85, 0.95, 1.0, 1.05, 1.15]
            tables = offline.collect_condition_tables(time_scales=scales)
            bases, _ = offline.extract_bases(tables, n_bases=n_bases)
            fallback = [tables[scales.index(1.0)]]
        else:
            tables = offline.collect_condition_tables(time_scales=[1.0])
            bases = tables
            fallback = tables

        fixed_bank = (
            ReferenceBank.genie(self.config, self.array, opcache=self._opcache)
            if bank_mode == "genie"
            else None
        )
        self.receiver = PhyReceiver(
            self.frame,
            basis_tables=bases,
            k_branches=k_branches,
            online_training=(bank_mode == "trained"),
            fixed_bank=fixed_bank,
            fallback_tables=fallback,
            hardened=hardened,
            observer=self._obs,
            opcache=self._opcache,
        )
        if bank_mode == "genie":
            # Perfect channel knowledge includes the tag's own preamble
            # waveform; the corrector then only undoes roll/AGC/offset.
            self.frame.preamble.record_reference(self.transmitter.modulator)
        elif self._opcache is not None:
            # The nominal preamble reference depends only on the operating
            # point (config + the canonical nominal array), not on this
            # simulator's heterogeneous tag.
            pre_i, pre_q = self.frame.preamble.levels
            key = (fingerprint_config(self.config), fingerprint([pre_i, pre_q]))
            ref = self._opcache.get(
                "preamble_reference",
                key,
                lambda: nominal_modulator.waveform_for_levels(pre_i, pre_q)[
                    : self.frame.preamble.n_samples
                ],
            )
            self.frame.preamble.install_reference(ref)
        else:
            self.frame.preamble.record_reference(nominal_modulator)

    # ----------------------------------------------------------------- run

    def run_packet(
        self,
        payload: bytes | None = None,
        rng: np.random.Generator | int | None = None,
        lead_slots: int = 4,
    ) -> PacketResult:
        """Simulate one packet end to end and score it.

        .. deprecated:: 1.1
            Prefer :meth:`repro.api.Session.run`, which wraps this loop in
            the unified run API and returns a :class:`repro.obs.RunReport`.
        """
        warn_once(
            "PacketSimulator.run_packet",
            "PacketSimulator.run_packet is deprecated as a public entry point; "
            "use repro.api.Session(ScenarioSpec(...)).run(n_packets=1) instead",
        )
        return self._run_packet(payload=payload, rng=rng, lead_slots=lead_slots)

    def _run_packet(
        self,
        payload: bytes | None = None,
        rng: np.random.Generator | int | None = None,
        lead_slots: int = 4,
    ) -> PacketResult:
        """One packet end to end (internal, non-deprecated implementation)."""
        obs = self._obs
        with obs.span("packet") as packet_span:
            cap = self.make_capture(payload=payload, rng=rng, lead_slots=lead_slots)
            payload = cap.payload
            out_snr_db = cap.link_snr_db
            rx = self.receiver.receive(
                cap.samples, search_start=0, search_stop=cap.search_stop
            )

            sent_bits = bytes_to_bits(payload)
            if len(rx.payload) == len(payload) and rx.detection.detected:
                got_bits = bytes_to_bits(rx.payload)
                errors = bit_errors(sent_bits, got_bits)
            else:
                # Lost packet (no detection, or a classified receiver failure
                # with no recovered bytes): every bit counts as errored — never
                # score fabricated zero padding as received data.
                errors = int(sent_bits.size)
            if obs.enabled:
                m = obs.metrics
                m.count("phy.packets_total", crc="ok" if rx.crc_ok else "fail")
                m.count("phy.bits_total", sent_bits.size)
                m.count("phy.bit_errors_total", errors)
                m.observe("phy.packet_ber", errors / sent_bits.size)
                m.observe("link.snr_db", out_snr_db)
                if np.isfinite(rx.snr_est_db):
                    m.observe("phy.snr_est_db", rx.snr_est_db)
                if np.isfinite(rx.equalizer_mse):
                    m.observe("phy.equalizer_mse", rx.equalizer_mse)
                packet_span.annotate(
                    crc_ok=rx.crc_ok, ber=errors / sent_bits.size, detected=rx.detection.detected
                )
                if rx.failure is not None:
                    packet_span.set_status("failed", str(rx.failure))
        return PacketResult(
            ber=errors / sent_bits.size,
            n_bit_errors=errors,
            n_bits=int(sent_bits.size),
            detected=rx.detection.detected,
            crc_ok=rx.crc_ok,
            snr_link_db=out_snr_db,
            snr_est_db=rx.snr_est_db,
            equalizer_mse=rx.equalizer_mse,
            failure=rx.failure,
            events=rx.events,
        )

    def make_capture(
        self,
        payload: bytes | None = None,
        rng: np.random.Generator | int | None = None,
        lead_slots: int = 4,
    ) -> CaptureSpec:
        """Synthesize one reader capture (transmit + channel + faults).

        Extracted from the packet loop so alternative receive front-ends
        (the streaming receiver, benchmarks) consume byte-identical
        captures: the RNG draw order matches `_run_packet`'s exactly, so
        the same seed produces the same capture either way.
        """
        obs = self._obs
        gen = ensure_rng(rng)
        if payload is None:
            payload = gen.integers(0, 256, size=self.frame.payload_bytes, dtype=np.uint8).tobytes()
        with obs.span("transmit"):
            u = self.transmitter.transmit(payload)
        # Random start offset: the reader sees some idle pedestal first.
        # A short trailing stretch keeps slightly-late detections (noisy
        # timing) inside the capture instead of truncating the packet.
        ts = self.config.samples_per_slot
        offset = int(gen.integers(0, max(lead_slots, 1))) * ts + int(gen.integers(0, ts))
        lead = np.full(offset, u[0], dtype=complex)
        tail = np.full(2 * ts, u[-1], dtype=complex)
        with obs.span("channel"):
            out = self.link.transmit(np.concatenate([lead, u, tail]), self.config.fs, gen)
            samples = out.samples
            if self.fault_plan is not None:
                samples = self.fault_plan.apply_capture(
                    samples, self._fault_context(offset, samples), gen
                )
        guard_samples = self.frame.guard_slots * ts
        search_stop = offset + guard_samples + 2 * ts
        return CaptureSpec(
            samples=samples,
            payload=payload,
            search_stop=search_stop,
            offset=offset,
            link_snr_db=out.snr_db,
        )

    def make_streaming_receiver(self, **kwargs):
        """A :class:`~repro.phy.streaming.StreamingReceiver` over this
        simulator's configured receiver (chunked front-end; see
        :mod:`repro.phy.streaming`)."""
        from repro.phy.streaming import StreamingReceiver

        return StreamingReceiver(self.receiver, **kwargs)

    def _fault_context(self, frame_start: int, samples: np.ndarray) -> FaultContext:
        """Frame geometry of this capture, for capture-stage injectors."""
        frame = self.frame
        ts = self.config.samples_per_slot
        preamble_start = frame_start + frame.guard_slots * ts
        preamble_end = preamble_start + frame.preamble_slots * ts
        training_end = preamble_end + frame.training.n_slots * ts
        payload_end = training_end + frame.payload_slots * ts
        return FaultContext(
            fs=self.config.fs,
            samples_per_slot=ts,
            frame_start=frame_start,
            preamble_start=preamble_start,
            preamble_end=preamble_end,
            training_start=preamble_end,
            training_end=training_end,
            payload_start=training_end,
            payload_end=payload_end,
            n_samples=samples.size,
        )

    def measure_ber(
        self,
        n_packets: int = 30,
        rng: np.random.Generator | int | None = None,
        keep_results: bool = False,
    ) -> BERMeasurement:
        """The paper's data-point procedure: aggregate BER over packets.

        ``keep_results=False`` (the default) aggregates incrementally and
        returns an empty ``results`` list — a large sweep then holds one
        packet's result (and its event list) at a time instead of all of
        them.  Pass ``keep_results=True`` to retain every
        :class:`PacketResult` for per-packet inspection.
        """
        gen = ensure_rng(rng)
        results: list[PacketResult] = []
        n_bits = n_errors = n_crc_fail = n_detected = 0
        snr_sum = 0.0
        snr_n = 0
        for _ in range(n_packets):
            r = self._run_packet(rng=gen)
            n_bits += r.n_bits
            n_errors += r.n_bit_errors
            n_crc_fail += not r.crc_ok
            n_detected += r.detected
            if np.isfinite(r.snr_est_db):
                snr_sum += r.snr_est_db
                snr_n += 1
            if keep_results:
                results.append(r)
        return BERMeasurement(
            ber=n_errors / n_bits if n_bits else 1.0,
            n_packets=n_packets,
            n_bits=n_bits,
            n_bit_errors=n_errors,
            packet_error_rate=n_crc_fail / max(n_packets, 1),
            detection_rate=n_detected / max(n_packets, 1),
            mean_snr_est_db=snr_sum / snr_n if snr_n else float("-inf"),
            results=results,
        )


def measure_ber(
    simulator: PacketSimulator, n_packets: int = 30, rng=None, keep_results: bool = False
) -> BERMeasurement:
    """Function-style alias of :meth:`PacketSimulator.measure_ber`."""
    return simulator.measure_ber(n_packets=n_packets, rng=rng, keep_results=keep_results)
