"""PHY layer: frame format and the end-to-end packet pipeline.

A RetroTurbo packet is laid out in slots as::

    [ idle guard | preamble | online-training | payload (+CRC) ]

with every section a multiple of ``L`` slots so the DSM group rotation
stays phase-aligned from detection through demodulation.
"""

from repro.phy.frame import FrameFormat
from repro.phy.pipeline import PacketResult, PacketSimulator, measure_ber
from repro.phy.receiver import PhyReceiver, ReceiverOutput
from repro.phy.transmitter import PhyTransmitter

__all__ = [
    "FrameFormat",
    "PacketResult",
    "PacketSimulator",
    "PhyReceiver",
    "PhyTransmitter",
    "ReceiverOutput",
    "measure_ber",
]
