"""Packet frame format: slot layout and payload bit processing.

Responsibilities: compute the slot layout (guard | preamble | training |
payload), keep every section a multiple of ``L`` slots, and convert payload
bytes to scrambled, CRC-protected, Gray-labelled PQAM levels and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coding.crc import crc16, crc16_check
from repro.coding.interleaver import BlockInterleaver
from repro.coding.reed_solomon import RSCodec, RSDecodeError
from repro.coding.scrambler import Scrambler
from repro.modem.config import ModemConfig
from repro.modem.preamble import Preamble
from repro.modem.symbols import PQAMConstellation
from repro.training.online import TrainingSequence

__all__ = ["FrameFormat", "round_up"]


def round_up(n: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``n``."""
    return ((n + multiple - 1) // multiple) * multiple


@dataclass
class FrameFormat:
    """Slot layout and payload mapping for one operating point.

    Parameters
    ----------
    config:
        The modem operating point.
    payload_bytes:
        User payload length (paper default: 128-byte packets).  Two CRC-16
        bytes are appended on the air.
    preamble_slots / training_rounds:
        Section sizes.  Defaults keep simulations brisk; pass
        ``paper_timing=True`` via :meth:`paper_default` for the prototype's
        50 ms preamble / 80 ms training.
    guard_slots:
        Idle slots before the preamble letting the LC settle at rest.
    codec:
        Optional Reed-Solomon codec for a *coded* frame (the Fig 18b
        configuration); the payload+CRC stream is RS-encoded, block-
        interleaved and scrambled before hitting the constellation.
    interleave_depth:
        Interleaver rows for coded frames; defaults to the RS block count
        so a slot-contiguous burst spreads across every block.
    """

    config: ModemConfig
    payload_bytes: int = 128
    preamble_slots: int | None = None
    training_rounds: int | None = None
    guard_slots: int | None = None
    scrambler: Scrambler = field(default_factory=Scrambler)
    codec: RSCodec | None = None
    interleave_depth: int | None = None

    def __post_init__(self) -> None:
        cfg = self.config
        if self.payload_bytes < 1:
            raise ValueError("payload must be at least one byte")
        wanted = self.preamble_slots if self.preamble_slots is not None else 40
        self.preamble_slots = round_up(max(wanted, 2 * cfg.dsm_order), cfg.dsm_order)
        self.guard_slots = self.guard_slots if self.guard_slots is not None else cfg.dsm_order
        if self.guard_slots % cfg.dsm_order:
            raise ValueError("guard_slots must be a multiple of the DSM order")
        self.preamble = Preamble(cfg, n_slots=self.preamble_slots)
        self.training = TrainingSequence(cfg, n_rounds=self.training_rounds)
        self.constellation = PQAMConstellation(cfg.pqam_order)
        if self.codec is not None:
            depth = self.interleave_depth or self._rs_blocks()
            if (self._rs_blocks() * self.codec.n) % depth:
                raise ValueError(
                    f"interleave depth {depth} must divide the coded length "
                    f"{self._rs_blocks() * self.codec.n}"
                )
            self.interleaver = BlockInterleaver(depth)
        else:
            self.interleaver = None

    def _rs_blocks(self) -> int:
        """Number of RS blocks covering payload + CRC."""
        assert self.codec is not None
        return -(-(self.payload_bytes + 2) // self.codec.k)

    @classmethod
    def paper_default(cls, config: ModemConfig, payload_bytes: int = 128) -> "FrameFormat":
        """The prototype's timing: ~50 ms preamble, ~80 ms online training."""
        preamble_slots = int(round(50e-3 / config.slot_s))
        training_rounds = max(
            int(round(80e-3 / (config.slot_s * config.dsm_order))), 2 * config.dsm_order
        )
        return cls(
            config,
            payload_bytes=payload_bytes,
            preamble_slots=preamble_slots,
            training_rounds=training_rounds,
        )

    # -------------------------------------------------------------- layout

    @property
    def on_air_bytes(self) -> int:
        """Bytes transmitted for the payload section (after any coding)."""
        if self.codec is None:
            return self.payload_bytes + 2
        return self._rs_blocks() * self.codec.n

    @property
    def payload_bits_on_air(self) -> int:
        """Scrambled on-air bits, padded to a whole number of symbols."""
        return round_up(self.on_air_bytes * 8, self.config.bits_per_symbol)

    @property
    def payload_slots(self) -> int:
        """Payload section length in slots."""
        return self.payload_bits_on_air // self.config.bits_per_symbol

    @property
    def total_slots(self) -> int:
        """Whole-frame length in slots."""
        return self.guard_slots + self.preamble_slots + self.training.n_slots + self.payload_slots

    @property
    def payload_start_slot(self) -> int:
        """First payload slot index within the frame."""
        return self.guard_slots + self.preamble_slots + self.training.n_slots

    @property
    def duration_s(self) -> float:
        """On-air frame duration."""
        return self.total_slots * self.config.slot_s

    def section_durations(self) -> dict[str, float]:
        """Per-section durations in seconds (latency bookkeeping)."""
        t = self.config.slot_s
        return {
            "guard": self.guard_slots * t,
            "preamble": self.preamble_slots * t,
            "training": self.training.n_slots * t,
            "payload": self.payload_slots * t,
        }

    # ---------------------------------------------------------------- bits

    def encode_payload(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Payload bytes -> (levels_i, levels_q) for the payload section.

        Pipeline: append CRC-16, optionally RS-encode and block-interleave,
        scramble (DC-stress avoidance), map to Gray-labelled levels.
        """
        if len(payload) != self.payload_bytes:
            raise ValueError(f"payload must be exactly {self.payload_bytes} bytes")
        on_air = payload + crc16(payload).to_bytes(2, "big")
        if self.codec is not None:
            on_air = self.interleaver.interleave(self.codec.encode_stream(on_air))
        scrambled = self.scrambler.scramble(on_air)
        bits = np.unpackbits(np.frombuffer(scrambled, dtype=np.uint8))
        pad = self.payload_bits_on_air - bits.size
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        return self.constellation.bits_to_levels(bits)

    def decode_payload(self, levels_i: np.ndarray, levels_q: np.ndarray) -> tuple[bytes, bool]:
        """(levels_i, levels_q) -> (payload bytes, crc_ok).

        Coded frames de-interleave and RS-decode; an uncorrectable block
        falls back to the systematic bytes (so BER accounting still works)
        with the CRC flagging the loss.
        """
        bits = self.constellation.levels_to_bits(levels_i, levels_q)
        raw_bits = bits[: self.on_air_bytes * 8]
        stream = self.scrambler.descramble(np.packbits(raw_bits).tobytes())
        if self.codec is not None:
            coded = self.interleaver.deinterleave(stream)
            decoded = bytearray()
            n = self.codec.n
            for start in range(0, len(coded), n):
                block = coded[start : start + n]
                try:
                    msg, _ = self.codec.decode(block)
                except RSDecodeError:
                    msg = block[: self.codec.k]  # best-effort systematic bytes
                decoded += msg
            stream = bytes(decoded[: self.payload_bytes + 2])
        payload, ok = stream[:-2], crc16_check(stream)
        return payload, ok

    def prefix_levels(self) -> tuple[np.ndarray, np.ndarray]:
        """Level sequences of the payload-independent frame prefix.

        Guard, preamble and training are fixed per frame format — the same
        ``payload_start_slot`` slots precede every payload, which is what
        lets a transmitter synthesise (and cache) the prefix waveform once
        per operating point.
        """
        guard = np.zeros(self.guard_slots, dtype=int)
        pre_i, pre_q = self.preamble.levels
        trn_i, trn_q = self.training.levels()
        levels_i = np.concatenate([guard, pre_i, trn_i])
        levels_q = np.concatenate([guard, pre_q, trn_q])
        assert levels_i.size == self.payload_start_slot
        return levels_i, levels_q

    def frame_levels(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Level sequences for the complete frame (guard..payload)."""
        cfg = self.config
        pre_i, pre_q = self.prefix_levels()
        pay_i, pay_q = self.encode_payload(payload)
        levels_i = np.concatenate([pre_i, pay_i])
        levels_q = np.concatenate([pre_q, pay_q])
        assert levels_i.size == self.total_slots
        assert self.payload_start_slot % cfg.dsm_order == 0
        return levels_i, levels_q

    def prime_levels(self) -> tuple[np.ndarray, np.ndarray]:
        """Known level pairs immediately preceding the payload.

        Covers ``V * L`` slots (enough to settle both the DFE's prediction
        buffer and its tail-effect histories), taken from the training
        section's tail.
        """
        cfg = self.config
        need = cfg.tail_memory * cfg.dsm_order
        trn_i, trn_q = self.training.levels()
        if trn_i.size < need:
            raise ValueError("training section shorter than the DFE priming window")
        return trn_i[-need:], trn_q[-need:]
