"""Reader-side PHY: samples -> detection -> training -> equalisation -> bits.

Implements the full receive pipeline of paper §4.3 on a corrected sample
stream: preamble detection with rotation correction, per-packet online
channel training over the offline KL bases, and K-branch DFE demodulation
primed with the known training tail.

The receiver is *hardened* by default: every stage either succeeds, recovers
through a bounded degradation ladder, or reports a typed
:class:`~repro.errors.FailureReason` — it never raises on channel-induced
damage and never silently fabricates payload bytes.  The ladder:

1. **Detection** — on a failed preamble search, retry once over the full
   capture, then once more matching only the preamble's tail (survives a
   burst that obliterated the preamble's head).  A detection whose frame
   would overrun the capture triggers a fit-constrained re-search before
   being classified as a truncated capture.
2. **Training** — an online solve that is rank-deficient, non-finite, or
   whose residual far exceeds the noise floor implied by the detection SNR
   falls back to the nominal reference bank instead of demodulating with a
   poisoned one.
3. **Equalisation/decode** — demodulator errors are classified, and a CRC
   mismatch is recorded as a decode-stage failure reason.

Pass ``hardened=False`` for the original fragile behaviour (used by tests
to demonstrate the recovery ladder's value).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EqualizationError, FailureReason, FailureStage, StageEvent
from repro.lcm.fingerprint import FingerprintTable
from repro.modem.dfe import DFEDemodulator
from repro.modem.preamble import PreambleDetection
from repro.modem.references import ReferenceBank
from repro.obs import ensure_observer
from repro.phy.frame import FrameFormat
from repro.training.online import OnlineTrainer
from repro.utils.logging import get_logger

__all__ = ["PhyReceiver", "ReceiverOutput"]

log = get_logger(__name__)


@dataclass
class ReceiverOutput:
    """Everything the receiver learned from one packet.

    ``failure`` is ``None`` only for a clean decode; ``events`` is the
    per-stage audit trail (including recoveries that still ended in a clean
    decode).
    """

    payload: bytes
    crc_ok: bool
    detection: PreambleDetection
    snr_est_db: float
    levels_i: np.ndarray
    levels_q: np.ndarray
    equalizer_mse: float
    failure: FailureReason | None = None
    events: list[StageEvent] = field(default_factory=list)


class PhyReceiver:
    """A reader configured for one frame format.

    Parameters
    ----------
    frame:
        Frame format (must match the transmitter's).
    basis_tables:
        Offline-training output: the KL basis tables online training will
        fit per group.  A single nominal table (S = 1) is the cheap default.
    k_branches:
        DFE beam width.
    online_training:
        Disable to demodulate straight off the nominal bank (ablation knob
        for the Fig 16c / 17b studies).
    fixed_bank:
        Bypass training entirely with a caller-provided bank (e.g. the
        genie bank in tests).
    fallback_tables:
        Nominal fingerprint tables backing the degraded-mode reference
        bank; defaults to ``basis_tables[0]`` (correct when S = 1, but
        callers running KL bases should pass the true nominal table).
    hardened:
        Enable the recovery ladder (retry / fallback / classify).  With
        ``False`` the receiver reproduces the original fragile behaviour:
        no retries, no training fallback, and a truncated detected packet
        raises ``ValueError``.
    max_detection_retries:
        Bound on fallback preamble searches (0-2).
    training_residual_factor / training_residual_floor:
        The trained bank is rejected when the solve's residual ratio
        exceeds ``factor * (10^(-snr/10) + floor)`` — i.e. far above the
        noise floor the detection SNR predicts.
    opcache:
        Operating-point artifact cache (:mod:`repro.utils.opcache`),
        forwarded to the online trainer so the training design matrix and
        its factorization are derived once per operating point.
    """

    def __init__(
        self,
        frame: FrameFormat,
        basis_tables: list[FingerprintTable],
        k_branches: int = 16,
        online_training: bool = True,
        fixed_bank: ReferenceBank | None = None,
        fallback_tables: list[FingerprintTable] | None = None,
        hardened: bool = True,
        max_detection_retries: int = 2,
        training_residual_factor: float = 10.0,
        training_residual_floor: float = 0.02,
        observer=None,
        opcache=None,
    ):
        self.frame = frame
        self.config = frame.config
        self.basis_tables = basis_tables
        self.k_branches = k_branches
        self.online_training = online_training
        self.fixed_bank = fixed_bank
        self.hardened = hardened
        self.max_detection_retries = max_detection_retries
        self.training_residual_factor = training_residual_factor
        self.training_residual_floor = training_residual_floor
        self._obs = ensure_observer(observer)
        self._trainer = OnlineTrainer(
            self.config,
            basis_tables,
            frame.training,
            preceding_levels=frame.preamble.levels,
            observer=self._obs,
            opcache=opcache,
        )
        nominal_source = (fallback_tables or basis_tables)[0]
        self._nominal_bank = ReferenceBank.from_unit_table(self.config, nominal_source)

    def install_reference(self, preamble_reference: np.ndarray) -> None:
        """Install the offline-recorded preamble reference waveform."""
        self.frame.preamble.install_reference(preamble_reference)

    # ----------------------------------------------------------- internals

    def _event(
        self,
        events: list[StageEvent],
        stage: FailureStage,
        status: str,
        detail: str = "",
    ) -> None:
        """Record one stage outcome on the audit trail *and* the metrics.

        The span tracer carries timing; this counter series carries the
        outcome taxonomy (the labelled successor of raw StageEvent lists).
        """
        events.append(StageEvent(stage, status, detail))
        self._obs.count("phy.stage_events_total", stage=stage.value, status=status)

    def frame_samples_after_offset(self) -> int:
        """Samples needed from the preamble start to the payload's end.

        Public because chunked callers (the streaming receiver) must know
        how far past a detection the buffer has to extend before the decode
        can complete — the boundary between ``buffer_pending`` (await more
        chunks) and ``truncated_capture`` (the stream ended short).
        """
        frame = self.frame
        ts = self.config.samples_per_slot
        return (frame.preamble_slots + frame.training.n_slots + frame.payload_slots) * ts

    # Backwards-compatible private alias.
    _frame_samples_after_offset = frame_samples_after_offset

    def _failure_output(
        self,
        detection: PreambleDetection,
        failure: FailureReason,
        events: list[StageEvent],
    ) -> ReceiverOutput:
        """A classified loss: no payload bytes, never zero-padding."""
        self._event(events, failure.stage, "failed", failure.code)
        log.info("packet lost: %s", failure)
        return ReceiverOutput(
            payload=b"",
            crc_ok=False,
            detection=detection,
            snr_est_db=detection.snr_db,
            levels_i=np.zeros(0, dtype=int),
            levels_q=np.zeros(0, dtype=int),
            equalizer_mse=float("inf"),
            failure=failure,
            events=events,
        )

    def _detect_with_retries(
        self,
        x: np.ndarray,
        search_start: int,
        search_stop: int | None,
        events: list[StageEvent],
        coarse_offset: int | None = None,
    ) -> PreambleDetection:
        """First-pass search plus the bounded fallback ladder.

        ``coarse_offset`` short-circuits the first pass's coarse scan with a
        caller-computed coarse minimum (the streaming receiver's incremental
        scanner); the retry ladder is unaffected.
        """
        frame = self.frame
        detection = frame.preamble.detect(
            x,
            search_start=search_start,
            search_stop=search_stop,
            coarse_offset=coarse_offset,
        )
        if detection.detected or not self.hardened:
            if detection.detected:
                self._event(events, FailureStage.DETECTION, "ok")
            return detection

        retries = []
        # Retry 1: the caller's window may simply have been too narrow.
        retries.append(("widened search window", dict(search_start=0, search_stop=None)))
        # Retry 2: match only the preamble tail — survives a corrupted head.
        tail_slots = max(frame.preamble.n_slots // 2, 2 * self.config.dsm_order)
        if tail_slots < frame.preamble.n_slots:
            retries.append(
                (
                    "tail-reference search",
                    dict(search_start=0, search_stop=None, reference_tail_slots=tail_slots),
                )
            )
        for detail, kwargs in retries[: self.max_detection_retries]:
            try:
                retry = frame.preamble.detect(x, **kwargs)
            except ValueError:
                continue
            if retry.detected:
                self._event(events, FailureStage.DETECTION, "retried", detail)
                log.info("preamble recovered via %s at offset %d", detail, retry.offset)
                return retry
        return detection

    def _train_bank(
        self,
        segment: np.ndarray,
        snr_db: float,
        events: list[StageEvent],
    ) -> ReferenceBank:
        """Online training with the ill-conditioned-solve fallback.

        ``segment`` is exactly the corrected training span — callers slice
        it, so a streaming caller can hand over a span assembled from
        chunks (bit-identical to a whole-buffer slice, since rotation
        correction is elementwise).
        """
        if not self.hardened:
            return self._trainer.train(segment)
        try:
            coefficients, diag = self._trainer.solve_with_diagnostics(segment)
        except (ValueError, np.linalg.LinAlgError) as exc:
            self._event(events, FailureStage.TRAINING, "fallback", f"solve failed: {exc}")
            log.warning("online training failed (%s); using nominal bank", exc)
            return self._nominal_bank
        noise_ratio = 10.0 ** (-snr_db / 10.0) if np.isfinite(snr_db) else 1.0
        limit = self.training_residual_factor * (noise_ratio + self.training_residual_floor)
        if not diag.finite or diag.rank_deficient:
            self._event(
                events,
                FailureStage.TRAINING,
                "fallback",
                f"ill-conditioned solve (rank {diag.rank}/{diag.n_columns})",
            )
            log.warning("online training ill-conditioned; using nominal bank")
            return self._nominal_bank
        if diag.residual_ratio > limit:
            self._event(
                events,
                FailureStage.TRAINING,
                "fallback",
                f"residual {diag.residual_ratio:.3g} above limit {limit:.3g}",
            )
            log.warning(
                "online training residual %.3g exceeds limit %.3g; using nominal bank",
                diag.residual_ratio,
                limit,
            )
            return self._nominal_bank
        self._event(events, FailureStage.TRAINING, "ok")
        return self._trainer.build_bank(coefficients)

    # ------------------------------------------------------------- receive

    def receive(
        self,
        x: np.ndarray,
        search_start: int = 0,
        search_stop: int | None = None,
        stream_end: bool = True,
        coarse_offset: int | None = None,
    ) -> ReceiverOutput:
        """Run the full pipeline on raw receiver samples.

        ``stream_end`` says whether ``x`` is the *final* extent of this
        capture.  The whole-buffer call sites leave it True; a chunked
        caller passes False while more samples may still arrive, turning
        the "frame overruns the buffer" condition from a terminal
        ``truncated_capture`` loss (or, unhardened, a ``ValueError``) into
        a resumable ``buffer_pending`` classification — re-calling with the
        extended buffer completes the decode.

        ``coarse_offset`` forwards an externally computed coarse-scan
        minimum to the first preamble search (see
        :meth:`~repro.modem.preamble.Preamble.detect`).
        """
        frame = self.frame
        cfg = self.config
        ts = cfg.samples_per_slot
        x = np.asarray(x, dtype=complex)
        events: list[StageEvent] = []
        obs = self._obs
        if not stream_end and x.size < search_start + frame.preamble.n_samples:
            # Not even one candidate offset is searchable yet; with the
            # stream still open that is a wait state, not a detection error.
            self._event(events, FailureStage.CAPTURE, "pending", "buffer_pending")
            from repro.modem.preamble import PreambleDetection, RotationCorrector

            placeholder = PreambleDetection(
                offset=0,
                corrector=RotationCorrector(1.0 + 0.0j, 0.0j, 0.0j),
                normalised_cost=float("inf"),
                snr_db=float("-inf"),
                detected=False,
            )
            return ReceiverOutput(
                payload=b"",
                crc_ok=False,
                detection=placeholder,
                snr_est_db=placeholder.snr_db,
                levels_i=np.zeros(0, dtype=int),
                levels_q=np.zeros(0, dtype=int),
                equalizer_mse=float("inf"),
                failure=FailureReason(
                    FailureStage.CAPTURE,
                    "buffer_pending",
                    f"need {search_start + frame.preamble.n_samples} samples "
                    f"to search, have {x.size}",
                ),
                events=events,
            )
        with obs.span("preamble") as det_span:
            detection = self._detect_with_retries(
                x, search_start, search_stop, events, coarse_offset
            )
            if obs.enabled:
                det_span.annotate(detected=detection.detected, offset=int(detection.offset))
                obs.count(
                    "phy.preamble.searches_total",
                    outcome="hit" if detection.detected else "miss",
                )
                if not detection.detected:
                    det_span.set_status("failed", "preamble_not_found")
        if self.hardened and not detection.detected:
            return self._failure_output(
                detection,
                FailureReason(
                    FailureStage.DETECTION,
                    "preamble_not_found",
                    f"best normalised cost {detection.normalised_cost:.3g}",
                ),
                events,
            )

        needed = self.frame_samples_after_offset()
        if detection.offset + needed > x.size:
            if not stream_end:
                # The frame extends past the buffered samples but the stream
                # has not ended — not a loss, a resumable wait state.  No
                # fit-constrained re-search either: the honest frame may
                # simply not have arrived yet.
                self._event(events, FailureStage.CAPTURE, "pending", "buffer_pending")
                return ReceiverOutput(
                    payload=b"",
                    crc_ok=False,
                    detection=detection,
                    snr_est_db=detection.snr_db,
                    levels_i=np.zeros(0, dtype=int),
                    levels_q=np.zeros(0, dtype=int),
                    equalizer_mse=float("inf"),
                    failure=FailureReason(
                        FailureStage.CAPTURE,
                        "buffer_pending",
                        f"need {detection.offset + needed} samples, have {x.size}",
                    ),
                    events=events,
                )
            if not self.hardened:
                if detection.detected:
                    raise ValueError(
                        f"packet truncated: need {detection.offset + needed} samples, "
                        f"have {x.size}"
                    )
                # A failed detection latched onto noise near the end of the
                # capture; report a lost packet instead of crashing.
                return ReceiverOutput(
                    payload=bytes(frame.payload_bytes),
                    crc_ok=False,
                    detection=detection,
                    snr_est_db=detection.snr_db,
                    levels_i=np.zeros(frame.payload_slots, dtype=int),
                    levels_q=np.zeros(frame.payload_slots, dtype=int),
                    equalizer_mse=float("inf"),
                    failure=FailureReason(FailureStage.DETECTION, "preamble_not_found"),
                    events=events,
                )
            # Perhaps a late false latch: re-search among offsets where a
            # complete frame still fits in the capture.
            recovered = None
            max_offset = x.size - needed
            if max_offset >= 0:
                try:
                    retry = frame.preamble.detect(x, search_start=0, search_stop=max_offset)
                except ValueError:
                    retry = None
                if retry is not None and retry.detected:
                    recovered = retry
            if recovered is None:
                return self._failure_output(
                    detection,
                    FailureReason(
                        FailureStage.CAPTURE,
                        "truncated_capture",
                        f"need {detection.offset + needed} samples, have {x.size}",
                    ),
                    events,
                )
            self._event(events, FailureStage.DETECTION, "retried", "fit-constrained re-search")
            log.info("frame overran capture; re-detected at offset %d", recovered.offset)
            detection = recovered

        with obs.span("rotation"):
            corrected = detection.corrector.apply(x)
        preamble_end = detection.offset + frame.preamble_slots * ts
        training_end = preamble_end + frame.training.n_slots * ts
        payload_end = training_end + frame.payload_slots * ts

        if self.fixed_bank is not None:
            bank = self.fixed_bank
        elif self.online_training:
            with obs.span("training") as train_span:
                bank = self._train_bank(
                    corrected[preamble_end:training_end], detection.snr_db, events
                )
                if obs.enabled and bank is self._nominal_bank:
                    train_span.set_status("fallback", "nominal bank")
        else:
            bank = self._nominal_bank

        try:
            with obs.span("equalize") as eq_span:
                dfe = DFEDemodulator(bank, k_branches=self.k_branches, observer=obs)
                result = dfe.demodulate(
                    corrected[training_end:payload_end],
                    frame.payload_slots,
                    prime_levels=frame.prime_levels(),
                )
                if obs.enabled:
                    eq_span.annotate(mse=result.mse, n_branches=result.n_branches)
            with obs.span("decode"):
                payload, crc_ok = frame.decode_payload(result.levels_i, result.levels_q)
        except (EqualizationError, ValueError, np.linalg.LinAlgError) as exc:
            if not self.hardened:
                raise
            code = (
                "equalization_error" if isinstance(exc, EqualizationError) else "demodulator_error"
            )
            return self._failure_output(
                detection,
                FailureReason(FailureStage.EQUALIZATION, code, str(exc)),
                events,
            )
        self._event(events, FailureStage.EQUALIZATION, "ok")
        failure = None
        if not crc_ok:
            failure = FailureReason(FailureStage.DECODE, "crc_mismatch")
            self._event(events, FailureStage.DECODE, "failed", "crc_mismatch")
        else:
            self._event(events, FailureStage.DECODE, "ok")
        return ReceiverOutput(
            payload=payload,
            crc_ok=crc_ok,
            detection=detection,
            snr_est_db=detection.snr_db,
            levels_i=result.levels_i,
            levels_q=result.levels_q,
            equalizer_mse=result.mse,
            failure=failure,
            events=events,
        )
