"""Reader-side PHY: samples -> detection -> training -> equalisation -> bits.

Implements the full receive pipeline of paper §4.3 on a corrected sample
stream: preamble detection with rotation correction, per-packet online
channel training over the offline KL bases, and K-branch DFE demodulation
primed with the known training tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lcm.fingerprint import FingerprintTable
from repro.modem.dfe import DFEDemodulator
from repro.modem.preamble import PreambleDetection
from repro.modem.references import ReferenceBank
from repro.phy.frame import FrameFormat
from repro.training.online import OnlineTrainer

__all__ = ["PhyReceiver", "ReceiverOutput"]


@dataclass
class ReceiverOutput:
    """Everything the receiver learned from one packet."""

    payload: bytes
    crc_ok: bool
    detection: PreambleDetection
    snr_est_db: float
    levels_i: np.ndarray
    levels_q: np.ndarray
    equalizer_mse: float


class PhyReceiver:
    """A reader configured for one frame format.

    Parameters
    ----------
    frame:
        Frame format (must match the transmitter's).
    basis_tables:
        Offline-training output: the KL basis tables online training will
        fit per group.  A single nominal table (S = 1) is the cheap default.
    k_branches:
        DFE beam width.
    online_training:
        Disable to demodulate straight off the nominal bank (ablation knob
        for the Fig 16c / 17b studies).
    fixed_bank:
        Bypass training entirely with a caller-provided bank (e.g. the
        genie bank in tests).
    """

    def __init__(
        self,
        frame: FrameFormat,
        basis_tables: list[FingerprintTable],
        k_branches: int = 16,
        online_training: bool = True,
        fixed_bank: ReferenceBank | None = None,
    ):
        self.frame = frame
        self.config = frame.config
        self.basis_tables = basis_tables
        self.k_branches = k_branches
        self.online_training = online_training
        self.fixed_bank = fixed_bank
        self._trainer = OnlineTrainer(
            self.config,
            basis_tables,
            frame.training,
            preceding_levels=frame.preamble.levels,
        )
        self._nominal_bank = ReferenceBank.from_unit_table(self.config, basis_tables[0])

    def install_reference(self, preamble_reference: np.ndarray) -> None:
        """Install the offline-recorded preamble reference waveform."""
        self.frame.preamble.install_reference(preamble_reference)

    # ------------------------------------------------------------- receive

    def receive(
        self,
        x: np.ndarray,
        search_start: int = 0,
        search_stop: int | None = None,
    ) -> ReceiverOutput:
        """Run the full pipeline on raw receiver samples."""
        frame = self.frame
        cfg = self.config
        ts = cfg.samples_per_slot
        detection = frame.preamble.detect(x, search_start=search_start, search_stop=search_stop)
        corrected = detection.corrector.apply(np.asarray(x, dtype=complex))
        preamble_end = detection.offset + frame.preamble_slots * ts
        training_end = preamble_end + frame.training.n_slots * ts
        payload_end = training_end + frame.payload_slots * ts
        if payload_end > corrected.size:
            if detection.detected:
                raise ValueError(
                    f"packet truncated: need {payload_end} samples, have {corrected.size}"
                )
            # A failed detection latched onto noise near the end of the
            # capture; report a lost packet instead of crashing.
            return ReceiverOutput(
                payload=bytes(frame.payload_bytes),
                crc_ok=False,
                detection=detection,
                snr_est_db=detection.snr_db,
                levels_i=np.zeros(frame.payload_slots, dtype=int),
                levels_q=np.zeros(frame.payload_slots, dtype=int),
                equalizer_mse=float("inf"),
            )
        if self.fixed_bank is not None:
            bank = self.fixed_bank
        elif self.online_training:
            bank = self._trainer.train(corrected[preamble_end:training_end])
        else:
            bank = self._nominal_bank
        dfe = DFEDemodulator(bank, k_branches=self.k_branches)
        result = dfe.demodulate(
            corrected[training_end:payload_end],
            frame.payload_slots,
            prime_levels=frame.prime_levels(),
        )
        payload, crc_ok = frame.decode_payload(result.levels_i, result.levels_q)
        return ReceiverOutput(
            payload=payload,
            crc_ok=crc_ok,
            detection=detection,
            snr_est_db=detection.snr_db,
            levels_i=result.levels_i,
            levels_q=result.levels_q,
            equalizer_mse=result.mse,
        )
