"""Streaming chunked receiver: §4.3 receive pipeline over a sample stream.

:class:`StreamingReceiver` wraps a :class:`~repro.phy.receiver.PhyReceiver`
and consumes the capture in arbitrary-sized chunks — down to single samples,
split anywhere including mid-preamble or mid-training — while emitting the
*identical* :class:`~repro.phy.receiver.ReceiverOutput` /
:class:`~repro.errors.FailureReason` / :class:`~repro.errors.StageEvent`
records the whole-buffer path produces.  That bit-identity is the load-bearing
contract (pinned by ``tests/phy/test_streaming_equivalence.py`` and the
streaming golden wall) and it shapes the whole design:

**Capture model.**  A stream is a sequence of *captures* — the unit the
batch receiver decodes.  Captures are delimited either by a fixed
``capture_samples`` length (continuous ingest; decode can complete and emit
mid-push, long before the capture boundary) or by explicit
:meth:`StreamingReceiver.end_capture` calls.  Each capture yields exactly
one output, equal to ``receiver.receive(capture, search_start, search_stop)``
on the concatenated samples.

**Incremental preamble search.**  The batch detector's coarse scan is a
running ``min`` over slice-local costs (each candidate offset reads only
``x[off : off + k]`` — see :meth:`~repro.modem.preamble.Preamble.offset_cost`),
so the scan streams: a rolling ``(cost, offset)`` tuple-min advances as far
as the buffered samples allow after every chunk, carrying the detector's
tail state across chunk boundaries.  With a bounded search window the scan
*commits* mid-stream once every coarse offset and the fine-pass margin are
buffered — from that point the detection equals the batch detector's by
construction.  With an unbounded window the coarse minimum still accumulates
incrementally and is handed to the batch detector at capture end as a
``coarse_offset`` hint, skipping the re-scan.

**Certainty gating.**  Stage effects (events, metric counts, the training
solve) are only performed once the batch pipeline is *guaranteed* to perform
them identically: after a committed confident detection, and once the frame
is known to fit the capture (immediately, when ``capture_samples`` bounds
the capture; otherwise once ``offset + frame_samples`` are buffered).  Every
uncertain or failure path — unconfident detection, truncation, short
buffers — is finalised by delegating the retained capture buffer to the
inner ``PhyReceiver.receive``, which reproduces the batch ladder (including
its raises) verbatim.

**Block-wise DFE.**  The payload decodes through
:class:`~repro.modem.dfe.DFEBlockSession`, feeding rotation-corrected
chunks as they arrive; the session's carry machinery makes any chunking
bit-identical to the whole-buffer demodulate.

**Backpressure.**  By default the capture buffer grows to the capture size
(memory is O(capture), freed at the boundary).  ``max_buffered_samples``
arms a drop policy: a capture whose *pre-decode* buffer exceeds the bound is
abandoned with a ``FailureReason(CAPTURE, "backpressure_drop")`` output and
counted on ``stream.backpressure_drops`` — by construction this breaks
equivalence for that capture, so the default is off.

Observability: the wrapped receiver's stage metrics flow unchanged; the
stream adds ``stream.*`` gauges — buffered samples, backpressure drops,
sustained emitted pkt/s — plus rolling AGC/normalisation state (running RMS
and DC estimates of the ingested samples; observational only, so the decode
stays bit-identical).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

import numpy as np

from repro.errors import FailureReason, FailureStage, StageEvent
from repro.modem.dfe import DFEDemodulator
from repro.obs import ensure_observer
from repro.phy.receiver import PhyReceiver, ReceiverOutput
from repro.utils.backend import active_backend
from repro.utils.logging import get_logger

__all__ = ["StreamingReceiver"]

log = get_logger(__name__)

# Capture-lifecycle states.
_SCANNING = "scanning"  # pre-detection: incremental coarse scan running
_DECODING = "decoding"  # committed detection: stages stream as samples land
_DONE = "done"  # output emitted; draining to the capture boundary
_DEFER = "defer"  # batch-delegate at capture end (failure/uncertain path)


class _GrowBuffer:
    """An append-only complex sample buffer with amortised O(1) growth.

    Doubling capacity keeps total copy work linear in the capture size even
    under 1-sample pushes; ``view()`` is a zero-copy window of the valid
    prefix, which every detector/stage read slices (slice-locality is what
    makes those reads bit-identical to reads of the final whole buffer).
    """

    __slots__ = ("_data", "size", "_xp")

    def __init__(self, xp, initial_capacity: int = 4096):
        self._xp = xp
        self._data = xp.empty(max(int(initial_capacity), 1), dtype=complex)
        self.size = 0

    def append(self, chunk) -> None:
        xp = self._xp
        chunk = xp.asarray(chunk, dtype=complex)
        n = int(chunk.size)
        need = self.size + n
        if need > self._data.size:
            cap = self._data.size
            while cap < need:
                cap *= 2
            grown = xp.empty(cap, dtype=complex)
            grown[: self.size] = self._data[: self.size]
            self._data = grown
        self._data[self.size : need] = chunk
        self.size = need

    def view(self):
        """Zero-copy view of the buffered samples."""
        return self._data[: self.size]


class StreamingReceiver:
    """Chunked front-end over a :class:`PhyReceiver` (see module docstring).

    Parameters
    ----------
    receiver:
        The configured batch receiver whose outputs this stream reproduces.
    capture_samples:
        Fixed capture length for continuous ingest.  ``None`` means captures
        are delimited by :meth:`end_capture` calls instead.
    search_start, search_stop:
        The per-capture preamble search window, exactly as passed to
        :meth:`PhyReceiver.receive`.  A bounded ``search_stop`` is what
        enables mid-stream detection commit.
    max_buffered_samples:
        Optional backpressure bound on the pre-decode capture buffer (see
        module docstring).  ``None`` (default) preserves equivalence.
    observer:
        Defaults to the wrapped receiver's observer so stage metrics land
        in the same registry.
    """

    def __init__(
        self,
        receiver: PhyReceiver,
        capture_samples: int | None = None,
        search_start: int = 0,
        search_stop: int | None = None,
        max_buffered_samples: int | None = None,
        observer=None,
    ):
        if capture_samples is not None and capture_samples < 1:
            raise ValueError("capture_samples must be positive")
        if max_buffered_samples is not None and max_buffered_samples < 1:
            raise ValueError("max_buffered_samples must be positive")
        self._inner = receiver
        self.capture_samples = capture_samples
        self.search_start = int(search_start)
        self.search_stop = None if search_stop is None else int(search_stop)
        self.max_buffered_samples = max_buffered_samples
        self._obs = ensure_observer(observer) if observer is not None else receiver._obs
        self._backend = active_backend()

        self.packets_emitted = 0
        self.captures_completed = 0
        self._closed = False
        self._t_first_push: float | None = None

        # Rolling AGC/normalisation state (running first/second moments of
        # the ingested samples; observational only).
        self._agc_power_sum = 0.0
        self._agc_dc_sum = 0.0 + 0.0j
        self._agc_n = 0

        self._reset_capture()

    # ------------------------------------------------------- capture state

    def _reset_capture(self) -> None:
        self._buf: _GrowBuffer | None = None
        self._fill = 0  # samples ingested into the current capture
        self._state = _SCANNING
        # Incremental coarse-scan state: the detector tail carried across
        # chunk boundaries.
        self._matched = None  # (y, skip, ref_power) of the primary search
        self._coarse_next = self.search_start
        self._coarse_best: tuple[float, int] | None = None
        # Committed-detection decode state.
        self._detection = None
        self._events: list[StageEvent] = []
        self._certain = False
        self._session = None
        self._bank = None
        self._fed_to = 0  # absolute sample index fed into the DFE session
        self._frame_needed = 0
        self._output: ReceiverOutput | None = None

    @property
    def buffered_samples(self) -> int:
        """Samples currently held for the open capture."""
        return 0 if self._buf is None else self._buf.size

    # --------------------------------------------------------------- push

    def push(self, chunk) -> list[ReceiverOutput]:
        """Ingest one chunk (any length, including empty); return any outputs
        completed by it.

        In fixed-``capture_samples`` mode a chunk may span capture
        boundaries; each completed capture contributes its output in order.
        """
        if self._closed:
            raise RuntimeError("stream is closed")
        if self._t_first_push is None:
            self._t_first_push = time.monotonic()
        xp = self._backend.xp
        chunk = xp.asarray(chunk, dtype=complex)
        if chunk.ndim != 1:
            raise ValueError(f"chunk must be 1-D, got shape {chunk.shape}")
        obs = self._obs
        if obs.enabled:
            obs.count("stream.chunks_total")
            self._update_agc(chunk)
        outputs: list[ReceiverOutput] = []
        pos = 0
        n = int(chunk.size)
        while pos < n:
            if self.capture_samples is None:
                take = n - pos
            else:
                take = min(n - pos, self.capture_samples - self._fill)
            self._ingest(chunk[pos : pos + take], outputs)
            pos += take
            if self.capture_samples is not None and self._fill >= self.capture_samples:
                outputs.extend(self._finalize_capture())
        if obs.enabled:
            obs.gauge("stream.buffered_samples", self.buffered_samples)
            self._emit_throughput()
        return outputs

    def end_capture(self) -> list[ReceiverOutput]:
        """Close the open capture explicitly and return its output (if any
        samples were ingested).  Only meaningful without ``capture_samples``.
        """
        if self._closed:
            raise RuntimeError("stream is closed")
        if self._fill == 0:
            return []
        outputs = self._finalize_capture()
        if self._obs.enabled:
            self._obs.gauge("stream.buffered_samples", self.buffered_samples)
            self._emit_throughput()
        return outputs

    def close(self) -> list[ReceiverOutput]:
        """End the stream, finalising any partially-ingested capture."""
        if self._closed:
            return []
        outputs = self.end_capture() if self._fill else []
        self._closed = True
        return outputs

    def run(self, chunks: Iterable[np.ndarray]) -> Iterator[ReceiverOutput]:
        """Generator front-end: drive the stream from a chunk iterable and
        yield outputs as captures complete (the Iris ``Receiver.run`` idiom).
        """
        for chunk in chunks:
            yield from self.push(chunk)
        yield from self.close()

    def probe(self) -> ReceiverOutput:
        """Diagnostic: run the batch pipeline on the current partial buffer
        with ``stream_end=False`` — a frame extending past the buffer is
        classified ``buffer_pending`` instead of lost.  Does not consume or
        alter stream state.
        """
        if self._buf is None:
            raise RuntimeError("no samples buffered")
        return self._inner.receive(
            self._backend.to_host(self._buf.view()),
            search_start=self.search_start,
            search_stop=self.search_stop,
            stream_end=False,
        )

    # ------------------------------------------------------------- ingest

    def _ingest(self, piece, outputs: list[ReceiverOutput]) -> None:
        """Append one capture-local piece and advance the state machine."""
        self._fill += int(piece.size)
        if self._state == _DONE:
            return  # output already emitted; drain to the boundary
        if self._buf is None:
            self._buf = _GrowBuffer(self._backend.xp)
        self._buf.append(piece)
        if (
            self.max_buffered_samples is not None
            and self._state in (_SCANNING, _DEFER)
            and self._buf.size > self.max_buffered_samples
        ):
            self._drop_capture(outputs)
            return
        if self._state == _SCANNING:
            self._advance_scan()
        if self._state == _DECODING:
            self._advance_decode(outputs)

    def _update_agc(self, chunk) -> None:
        """Fold a chunk into the rolling AGC estimate and export gauges."""
        if chunk.size == 0:
            return
        backend = self._backend
        xp = backend.xp
        power = float(backend.scalar(xp.sum(chunk.real**2 + chunk.imag**2)))
        dc = complex(backend.scalar(xp.sum(chunk)))
        self._agc_power_sum += power
        self._agc_dc_sum += dc
        self._agc_n += int(chunk.size)
        obs = self._obs
        obs.gauge("stream.agc_rms", (self._agc_power_sum / self._agc_n) ** 0.5)
        obs.gauge("stream.agc_dc_mag", abs(self._agc_dc_sum / self._agc_n))

    def _emit_throughput(self) -> None:
        if self.packets_emitted and self._t_first_push is not None:
            elapsed = time.monotonic() - self._t_first_push
            if elapsed > 0:
                self._obs.gauge("stream.sustained_pps", self.packets_emitted / elapsed)

    # ---------------------------------------------------------------- scan

    def _advance_scan(self) -> None:
        """Advance the incremental coarse scan; commit detection when the
        batch detector's full first-pass window is buffered."""
        preamble = self._inner.frame.preamble
        if self._matched is None:
            self._matched = preamble.matched_reference()
        y, _skip, _ref_power = self._matched
        k = y.size
        x = self._buf.view()
        avail = self._buf.size
        stride = preamble.default_coarse_stride
        sstop = self.search_stop
        # The running tuple-min over (cost, offset) is exactly the batch
        # coarse pass's min(); evaluating each offset as soon as its slice
        # is buffered gives the same floats (slice-local costs).
        limit = avail - k
        while self._coarse_next <= limit and (sstop is None or self._coarse_next <= sstop):
            cand = (
                preamble.offset_cost(x, self._coarse_next, self._matched),
                self._coarse_next,
            )
            if self._coarse_best is None or cand < self._coarse_best:
                self._coarse_best = cand
            self._coarse_next += stride
        if sstop is None:
            return  # unbounded window: can only finalise at capture end
        if self.search_start > sstop:
            # Degenerate window: the batch detector raises "empty search
            # range" — reproduce it through the capture-end delegate.
            self._state = _DEFER
            return
        if self._coarse_next <= sstop or avail < sstop + k:
            return  # scan or fine-pass margin still incomplete
        # Commit: the batch first-pass detection over any longer buffer is
        # now fully determined by the buffered prefix.  The commit itself is
        # side-effect-free — events/metrics fire at the certainty point (see
        # _advance_decode), so an eventually-deferred capture emits nothing
        # the batch delegate would not.
        inner = self._inner
        detection = inner.frame.preamble.detect(
            x,
            search_start=self.search_start,
            search_stop=sstop,
            coarse_offset=self._coarse_best[1],
        )
        if not detection.detected and inner.hardened:
            # The batch ladder retries over the *full* capture; defer.
            self._state = _DEFER
            return
        self._detection = detection
        self._frame_needed = inner.frame_samples_after_offset()
        if (
            self.capture_samples is not None
            and detection.offset + self._frame_needed > self.capture_samples
        ):
            # The frame cannot fit this capture; the batch path will run its
            # truncation ladder on the full buffer.
            self._state = _DEFER
            self._detection = None
            return
        self._state = _DECODING

    def _emit_detection_effects(self) -> None:
        """The batch receive prologue's events/metrics for the committed
        detection, in its exact order — emitted once the streamed decode is
        guaranteed to run (so a deferred capture never pre-emits)."""
        obs = self._obs
        inner = self._inner
        detection = self._detection
        with obs.span("preamble") as det_span:
            if detection.detected:
                inner._event(self._events, FailureStage.DETECTION, "ok")
            if obs.enabled:
                det_span.annotate(detected=detection.detected, offset=int(detection.offset))
                obs.count(
                    "phy.preamble.searches_total",
                    outcome="hit" if detection.detected else "miss",
                )
                if not detection.detected:
                    det_span.set_status("failed", "preamble_not_found")

    # -------------------------------------------------------------- decode

    def _advance_decode(self, outputs: list[ReceiverOutput]) -> None:
        """Stream the post-detection stages as far as the buffer allows."""
        inner = self._inner
        frame = inner.frame
        ts = inner.config.samples_per_slot
        detection = self._detection
        avail = self._buf.size
        offset = detection.offset
        frame_end = offset + self._frame_needed
        if not self._certain:
            if self.capture_samples is None and avail < frame_end:
                return  # open-ended capture: frame fit not yet guaranteed
            self._certain = True
            self._emit_detection_effects()
        obs = self._obs
        preamble_end = offset + frame.preamble_slots * ts
        training_end = preamble_end + frame.training.n_slots * ts
        payload_end = training_end + frame.payload_slots * ts
        x = self._buf.view()
        corrector = detection.corrector
        if self._session is None:
            if avail < training_end:
                return
            # Rotation correction commutes with slicing (elementwise), so
            # correcting the training span alone matches the batch path's
            # whole-buffer correction bit-for-bit.
            with obs.span("rotation"):
                segment = corrector.apply(self._backend.to_host(x[preamble_end:training_end]))
            if inner.fixed_bank is not None:
                bank = inner.fixed_bank
            elif inner.online_training:
                with obs.span("training") as train_span:
                    bank = inner._train_bank(segment, detection.snr_db, self._events)
                    if obs.enabled and bank is inner._nominal_bank:
                        train_span.set_status("fallback", "nominal bank")
            else:
                bank = inner._nominal_bank
            self._bank = bank
            try:
                dfe = DFEDemodulator(bank, k_branches=inner.k_branches, observer=obs)
                self._session = dfe.begin_block(
                    1, frame.payload_slots, prime_levels=frame.prime_levels()
                )
            except Exception as exc:  # classified exactly as the batch path
                if self._classify_decode_error(exc, outputs):
                    return
                raise
            self._fed_to = training_end
        # Feed every newly-buffered payload sample into the block session.
        upto = min(avail, payload_end)
        if upto > self._fed_to:
            corrected = corrector.apply(self._backend.to_host(x[self._fed_to : upto]))
            try:
                self._session.feed(corrected[None, :])
            except Exception as exc:
                if self._classify_decode_error(exc, outputs):
                    return
                raise
            self._fed_to = upto
        if avail < payload_end:
            return
        try:
            with obs.span("equalize") as eq_span:
                result = self._session.finish()[0]
                if obs.enabled:
                    eq_span.annotate(mse=result.mse, n_branches=result.n_branches)
            with obs.span("decode"):
                payload, crc_ok = frame.decode_payload(result.levels_i, result.levels_q)
        except Exception as exc:
            if self._classify_decode_error(exc, outputs):
                return
            raise
        inner._event(self._events, FailureStage.EQUALIZATION, "ok")
        failure = None
        if not crc_ok:
            failure = FailureReason(FailureStage.DECODE, "crc_mismatch")
            inner._event(self._events, FailureStage.DECODE, "failed", "crc_mismatch")
        else:
            inner._event(self._events, FailureStage.DECODE, "ok")
        self._emit(
            ReceiverOutput(
                payload=payload,
                crc_ok=crc_ok,
                detection=detection,
                snr_est_db=detection.snr_db,
                levels_i=result.levels_i,
                levels_q=result.levels_q,
                equalizer_mse=result.mse,
                failure=failure,
                events=self._events,
            ),
            outputs,
        )

    def _classify_decode_error(self, exc: Exception, outputs: list[ReceiverOutput]) -> bool:
        """Mirror the batch path's equalize/decode exception handling.

        Returns True when the error was converted into a classified-loss
        output (hardened mode); False to re-raise (unhardened, or an error
        class the batch path would not catch either).
        """
        from repro.errors import EqualizationError

        if not isinstance(exc, (EqualizationError, ValueError, np.linalg.LinAlgError)):
            return False
        if not self._inner.hardened:
            return False
        code = (
            "equalization_error" if isinstance(exc, EqualizationError) else "demodulator_error"
        )
        self._emit(
            self._inner._failure_output(
                self._detection,
                FailureReason(FailureStage.EQUALIZATION, code, str(exc)),
                self._events,
            ),
            outputs,
        )
        return True

    # ----------------------------------------------------------- finalize

    def _emit(self, output: ReceiverOutput, outputs: list[ReceiverOutput]) -> None:
        """Deliver one capture output and release the capture buffer."""
        outputs.append(output)
        self.packets_emitted += 1
        self._state = _DONE
        self._buf = None  # bounded memory: the capture buffer dies here
        self._session = None
        if self._obs.enabled:
            self._obs.count("stream.packets_emitted_total")

    def _finalize_capture(self) -> list[ReceiverOutput]:
        """Capture boundary: emit the deferred batch delegate if the
        streamed pipeline did not already produce the output."""
        outputs: list[ReceiverOutput] = []
        state = self._state
        if state != _DONE:
            buf = self._buf.view() if self._buf is not None else None
            hint = self._coarse_hint()
            try:
                outputs.append(
                    self._inner.receive(
                        self._backend.to_host(buf),
                        search_start=self.search_start,
                        search_stop=self.search_stop,
                        coarse_offset=hint,
                    )
                )
                self.packets_emitted += 1
                if self._obs.enabled:
                    self._obs.count("stream.packets_emitted_total")
            finally:
                # A raising delegate (e.g. capture shorter than the
                # preamble, matching the batch ValueError) still closes the
                # capture so the stream can continue.
                self.captures_completed += 1
                self._reset_capture()
            return outputs
        self.captures_completed += 1
        self._reset_capture()
        return outputs

    def _coarse_hint(self) -> int | None:
        """The incremental scan's coarse minimum, iff it covered exactly the
        offsets the batch first pass will scan (then the hint is an identity
        optimisation; otherwise the delegate re-scans from scratch)."""
        if self._coarse_best is None or self._matched is None or self._buf is None:
            return None
        y, skip, _ = self._matched
        stop = self._buf.size - y.size - skip
        if self.search_stop is not None:
            stop = min(self.search_stop, stop)
        if stop < self.search_start:
            return None
        best_off = self._coarse_best[1]
        if self._coarse_next <= stop or not self.search_start <= best_off <= stop:
            return None
        return best_off

    def _drop_capture(self, outputs: list[ReceiverOutput]) -> None:
        """Backpressure: abandon the capture (policy, not equivalence)."""
        obs = self._obs
        obs.count("stream.backpressure_drops")
        log.warning(
            "backpressure: dropping capture with %d buffered samples (bound %d)",
            self._buf.size,
            self.max_buffered_samples,
        )
        from repro.modem.preamble import PreambleDetection, RotationCorrector

        placeholder = PreambleDetection(
            offset=0,
            corrector=RotationCorrector(1.0 + 0.0j, 0.0j, 0.0j),
            normalised_cost=float("inf"),
            snr_db=float("-inf"),
            detected=False,
        )
        self._emit(
            self._inner._failure_output(
                placeholder,
                FailureReason(
                    FailureStage.CAPTURE,
                    "backpressure_drop",
                    f"buffered {self._fill} samples above bound {self.max_buffered_samples}",
                ),
                self._events,
            ),
            outputs,
        )
