"""Tag-side PHY: frame levels -> LCM drive -> optical waveform.

The backscatter controller of paper §3.2: picks the modulation operating
point, serialises the frame onto the pixel array, and reports the energy
the schedule costs.

The guard/preamble/training prefix of every frame is payload-independent,
so when an :class:`~repro.utils.opcache.OpCache` is supplied the prefix
waveform (and the exact LC ``(phi, psi)`` state at its end) is synthesised
once per operating point and replayed for every subsequent packet; only
the payload section is simulated per transmit.  The split is bitwise
transparent: frame sections are multiples of the DSM order, so the drive
schedule of ``prefix + payload`` concatenates exactly, the per-tick state
recurrence is independent of how many ticks follow, and the uniform-grid
synthesis path evaluates each tick from its boundary state identically in
either segment.  The roll-phase factor is applied once on the assembled
frame, keeping the cached prefix orientation-free.
"""

from __future__ import annotations

import numpy as np

from repro.lcm.array import LCMArray
from repro.lcm.power import TagPowerModel
from repro.lcm.response import is_uniform_tick_grid
from repro.modem.dsm_pqam import DsmPqamModulator
from repro.phy.frame import FrameFormat
from repro.utils.opcache import fingerprint, fingerprint_array, fingerprint_config, resolve_opcache

__all__ = ["PhyTransmitter"]


class PhyTransmitter:
    """A tag configured with a frame format and a pixel array."""

    def __init__(
        self,
        frame: FrameFormat,
        array: LCMArray,
        power_model: TagPowerModel | None = None,
        opcache=None,
    ):
        self.frame = frame
        self.array = array
        self.modulator = DsmPqamModulator(frame.config, array)
        self.power_model = power_model or TagPowerModel()
        self._opcache = resolve_opcache(opcache)
        self._array_fp: str | None = None

    def _array_fingerprint(self) -> str:
        if self._array_fp is None:
            self._array_fp = fingerprint_array(self.array)
        return self._array_fp

    def _prefix_artifact(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(prefix_wave, phi_end, psi_end)`` for this operating point."""
        prefix_i, prefix_q = self.frame.prefix_levels()
        key = (
            fingerprint_config(self.frame.config),
            self._array_fingerprint(),
            fingerprint([prefix_i, prefix_q]),
        )

        def build() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            wave, (phi, psi) = self.modulator.waveform_for_levels(
                prefix_i, prefix_q, roll_rad=0.0, return_state=True
            )
            return wave, phi, psi

        return self._opcache.get("tx_prefix", key, build)

    def transmit(self, payload: bytes, roll_rad: float = 0.0) -> np.ndarray:
        """Complex baseband waveform of one complete frame."""
        cfg = self.frame.config
        if self._opcache is not None and is_uniform_tick_grid(
            self.frame.total_slots, cfg.slot_s, cfg.fs
        ):
            prefix_wave, phi0, psi0 = self._prefix_artifact()
            pay_i, pay_q = self.frame.encode_payload(payload)
            payload_wave = self.modulator.waveform_for_levels(
                pay_i, pay_q, roll_rad=0.0, initial_phi=phi0, initial_psi=psi0
            )
            full = np.concatenate([prefix_wave, payload_wave])
            return full * np.exp(2j * roll_rad)
        levels_i, levels_q = self.frame.frame_levels(payload)
        return self.modulator.waveform_for_levels(levels_i, levels_q, roll_rad=roll_rad)

    def transmit_power_w(self, payload: bytes) -> float:
        """Average tag power over the frame (the §7.2.2 Power microbench)."""
        levels_i, levels_q = self.frame.frame_levels(payload)
        drive = self.modulator.drive_for_levels(levels_i, levels_q)
        return self.power_model.mean_power(self.array, drive, self.frame.config.slot_s)
