"""Tag-side PHY: frame levels -> LCM drive -> optical waveform.

The backscatter controller of paper §3.2: picks the modulation operating
point, serialises the frame onto the pixel array, and reports the energy
the schedule costs.
"""

from __future__ import annotations

import numpy as np

from repro.lcm.array import LCMArray
from repro.lcm.power import TagPowerModel
from repro.modem.dsm_pqam import DsmPqamModulator
from repro.phy.frame import FrameFormat

__all__ = ["PhyTransmitter"]


class PhyTransmitter:
    """A tag configured with a frame format and a pixel array."""

    def __init__(self, frame: FrameFormat, array: LCMArray, power_model: TagPowerModel | None = None):
        self.frame = frame
        self.array = array
        self.modulator = DsmPqamModulator(frame.config, array)
        self.power_model = power_model or TagPowerModel()

    def transmit(self, payload: bytes, roll_rad: float = 0.0) -> np.ndarray:
        """Complex baseband waveform of one complete frame."""
        levels_i, levels_q = self.frame.frame_levels(payload)
        return self.modulator.waveform_for_levels(levels_i, levels_q, roll_rad=roll_rad)

    def transmit_power_w(self, payload: bytes) -> float:
        """Average tag power over the frame (the §7.2.2 Power microbench)."""
        levels_i, levels_q = self.frame.frame_levels(payload)
        drive = self.modulator.drive_for_levels(levels_i, levels_q)
        return self.power_model.mean_power(self.array, drive, self.frame.config.slot_s)
