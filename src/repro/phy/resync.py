"""Mid-packet re-synchronization — the paper's §8 mobility proposal.

"One possible solution would be inserting multiple synchronization frames
based on the mobility level and packet length to perform dynamic channel
equalization."  This module implements exactly that:

* :class:`ResyncFrameFormat` interleaves short *sync sections* (known
  corner-level bursts) into the payload every ``sync_interval_slots``.
* :class:`MobileReceiver` demodulates block by block: before each payload
  block it re-fits the widely-linear corrector (a, b, c) on the preceding
  sync section against its *expected* waveform (synthesised from the
  trained reference bank and the already-decided symbols), tracking slow
  rotation/gain drift that a single head-of-packet estimate cannot.

All section lengths stay multiples of ``L`` so the DSM group rotation is
phase-aligned at every block boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lcm.fingerprint import FingerprintTable
from repro.modem.dfe import DFEDemodulator
from repro.modem.preamble import PreambleDetection, RotationCorrector
from repro.modem.references import ReferenceBank, assemble_waveform
from repro.phy.frame import FrameFormat, round_up
from repro.phy.receiver import ReceiverOutput
from repro.training.online import OnlineTrainer
from repro.utils.mseq import LFSR

__all__ = ["MobileReceiver", "ResyncFrameFormat"]


class ResyncFrameFormat(FrameFormat):
    """Frame with known sync sections interleaved into the payload.

    Parameters (beyond :class:`FrameFormat`)
    ----------------------------------------
    sync_interval_slots:
        Payload slots between consecutive sync sections (rounded up to a
        multiple of L).  Choose from the expected mobility level: the
        channel must be quasi-static over one interval.
    sync_slots:
        Length of each sync section; defaults to ``V * L`` so it doubles
        as the next block's DFE priming window.
    """

    def __init__(
        self,
        config,
        payload_bytes: int = 128,
        sync_interval_slots: int = 64,
        sync_slots: int | None = None,
        **kwargs,
    ):
        super().__init__(config, payload_bytes=payload_bytes, **kwargs)
        l_order = config.dsm_order
        self.sync_interval_slots = round_up(max(sync_interval_slots, l_order), l_order)
        wanted_sync = sync_slots if sync_slots is not None else config.tail_memory * l_order
        self.sync_slots = round_up(max(wanted_sync, config.tail_memory * l_order), l_order)
        self._sync_levels = self._build_sync_levels()

    def _build_sync_levels(self) -> tuple[np.ndarray, np.ndarray]:
        m = self.config.levels_per_axis
        lfsr = LFSR(order=11, seed=0x155)
        bits = lfsr.run(2 * self.sync_slots)
        return (
            bits[: self.sync_slots].astype(int) * (m - 1),
            bits[self.sync_slots :].astype(int) * (m - 1),
        )

    @property
    def sync_levels(self) -> tuple[np.ndarray, np.ndarray]:
        """The known level pairs of one sync section."""
        return self._sync_levels[0].copy(), self._sync_levels[1].copy()

    @property
    def n_blocks(self) -> int:
        """Number of payload blocks (sync sections sit *between* blocks)."""
        return -(-self.payload_slots // self.sync_interval_slots)

    @property
    def n_sync_sections(self) -> int:
        """Sync sections inserted (one after each block except the last)."""
        return max(self.n_blocks - 1, 0)

    def block_slot_counts(self) -> list[int]:
        """Payload slots per block."""
        counts = []
        remaining = self.payload_slots
        while remaining > 0:
            take = min(self.sync_interval_slots, remaining)
            counts.append(take)
            remaining -= take
        return counts

    @property
    def total_slots(self) -> int:
        """Whole-frame length in slots, including sync sections."""
        return (
            self.guard_slots
            + self.preamble_slots
            + self.training.n_slots
            + self.payload_slots
            + self.n_sync_sections * self.sync_slots
        )

    def frame_levels(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Levels for the whole frame with sync sections interleaved."""
        cfg = self.config
        guard = np.zeros(self.guard_slots, dtype=int)
        pre_i, pre_q = self.preamble.levels
        trn_i, trn_q = self.training.levels()
        pay_i, pay_q = self.encode_payload(payload)
        sync_i, sync_q = self._sync_levels
        blocks = self.block_slot_counts()
        parts_i = [guard, pre_i, trn_i]
        parts_q = [guard, pre_q, trn_q]
        start = 0
        for b, count in enumerate(blocks):
            parts_i.append(pay_i[start : start + count])
            parts_q.append(pay_q[start : start + count])
            start += count
            if b != len(blocks) - 1:
                parts_i.append(sync_i)
                parts_q.append(sync_q)
        levels_i = np.concatenate(parts_i)
        levels_q = np.concatenate(parts_q)
        assert levels_i.size == self.total_slots
        assert self.payload_start_slot % cfg.dsm_order == 0
        return levels_i, levels_q


@dataclass
class _BlockTrace:
    """Diagnostics for one demodulated block."""

    block: int
    corrector: RotationCorrector
    mse: float


class MobileReceiver:
    """Block-wise receiver with per-sync corrector re-estimation."""

    def __init__(
        self,
        frame: ResyncFrameFormat,
        basis_tables: list[FingerprintTable],
        k_branches: int = 16,
        resync: bool = True,
    ):
        self.frame = frame
        self.config = frame.config
        self.basis_tables = basis_tables
        self.k_branches = k_branches
        self.resync = resync
        self._trainer = OnlineTrainer(
            self.config,
            basis_tables,
            frame.training,
            preceding_levels=frame.preamble.levels,
        )

    def install_reference(self, preamble_reference: np.ndarray) -> None:
        """Install the offline preamble reference."""
        self.frame.preamble.install_reference(preamble_reference)

    @staticmethod
    def _fit_corrector(raw: np.ndarray, expected: np.ndarray) -> RotationCorrector:
        design = np.column_stack([raw, np.conj(raw), np.ones(raw.size, dtype=complex)])
        theta, *_ = np.linalg.lstsq(design, expected, rcond=None)
        return RotationCorrector(a=complex(theta[0]), b=complex(theta[1]), c=complex(theta[2]))

    def receive(
        self,
        x: np.ndarray,
        search_start: int = 0,
        search_stop: int | None = None,
    ) -> tuple[ReceiverOutput, list[_BlockTrace]]:
        """Full mobile pipeline; returns output plus per-block diagnostics."""
        frame = self.frame
        cfg = self.config
        ts = cfg.samples_per_slot
        x = np.asarray(x, dtype=complex)
        detection: PreambleDetection = frame.preamble.detect(
            x, search_start=search_start, search_stop=search_stop
        )
        corrector = detection.corrector
        preamble_end = detection.offset + frame.preamble_slots * ts
        training_end = preamble_end + frame.training.n_slots * ts
        bank: ReferenceBank = self._trainer.train(
            corrector.apply(x[preamble_end:training_end])
        )

        sync_i, sync_q = frame.sync_levels
        blocks = frame.block_slot_counts()
        prime_n = cfg.tail_memory * cfg.dsm_order
        prime = frame.prime_levels()
        levels_i_parts: list[np.ndarray] = []
        levels_q_parts: list[np.ndarray] = []
        traces: list[_BlockTrace] = []
        cursor = training_end
        total_mse = 0.0
        for b, count in enumerate(blocks):
            block_samples = x[cursor : cursor + count * ts]
            dfe = DFEDemodulator(bank, k_branches=self.k_branches)
            result = dfe.demodulate(
                corrector.apply(block_samples), count, prime_levels=prime
            )
            levels_i_parts.append(result.levels_i)
            levels_q_parts.append(result.levels_q)
            traces.append(_BlockTrace(block=b, corrector=corrector, mse=result.mse))
            total_mse += result.mse * count
            cursor += count * ts
            if b == len(blocks) - 1:
                break
            # Re-fit the corrector on the sync section against its
            # expected waveform given what we just decided.
            sync_raw = x[cursor : cursor + frame.sync_slots * ts]
            pre_levels = (
                np.concatenate([prime[0], result.levels_i])[-prime_n:],
                np.concatenate([prime[1], result.levels_q])[-prime_n:],
            )
            expected = assemble_waveform(bank, sync_i, sync_q, preceding=pre_levels)
            if self.resync:
                corrector = self._fit_corrector(sync_raw, expected)
            cursor += frame.sync_slots * ts
            prime = (sync_i[-prime_n:], sync_q[-prime_n:])
        levels_i = np.concatenate(levels_i_parts)
        levels_q = np.concatenate(levels_q_parts)
        payload, crc_ok = frame.decode_payload(levels_i, levels_q)
        output = ReceiverOutput(
            payload=payload,
            crc_ok=crc_ok,
            detection=detection,
            snr_est_db=detection.snr_db,
            levels_i=levels_i,
            levels_q=levels_q,
            equalizer_mse=total_mse / max(frame.payload_slots, 1),
        )
        return output, traces
