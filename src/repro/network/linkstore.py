"""Struct-of-arrays link-state store: million-tag schedules per round.

:class:`~repro.network.link.TagLinkState` closes the paper's adaptation
loop one Python call per TDMA slot — a dict lookup into the rate profile,
a per-call :meth:`~repro.mac.rate_adapt.CodingOption.block_success`
(a scipy ``binom.cdf`` evaluation, ~60 µs), a scalar ``rng.random()``
draw, and a handful of attribute mutations.  At fleet scale that per-slot
cost is the wall: dense deployments top out at thousands of tags.

:class:`LinkStateStore` is the same state machine laid out as parallel
ndarrays over the whole tag population — rate-rung index, success streak,
pending ARQ attempts, watchdog failure/success counters, recovery
(fallback-hysteresis) flag, and the delivered/abandoned/attempts counters
— with two precomputed tables replacing the per-call arithmetic:

* **per-rung airtime** (``airtime_by_rung``): built once with the exact
  scalar formula of :meth:`TagLinkState.frame_airtime_s`;
* **per-(rung, SNR) block success** (``_success_rows``): for each
  ``(reader, occlusion, rung)`` key, one row of per-tag CRC success
  probabilities, built lazily on first use and cached — served rounds are
  then pure table lookups + broadcasting.

:meth:`serve_round` turns a reader's whole rotated schedule into one
kernel invocation: gather each scheduled tag's airtime from its current
rung, left-fold ``cumsum`` + cutoff against the round's airtime budget to
find the served prefix (bitwise the reference's sequential accumulation),
draw **exactly one uniform per served tag from that tag's own stream**
(the documented determinism contract — a tag's outcome sequence depends
only on its own seed and how many slots it was served), then apply the
watchdog/streak/ARQ/rate-rung transition as vectorized ndarray updates.

Bit-identity with the frozen scalar reference
(:mod:`repro.network.link_reference`) is a hard contract, pinned by the
hypothesis wall in ``tests/network/test_linkstore_equivalence.py``.  Two
consequences shape the implementation:

* The ``pow`` steps of the BER waterfall are evaluated **per element with
  Python floats** at table-build time: numpy's SIMD ``power`` ufunc is not
  last-bit identical to the C ``pow`` the scalar path calls, and a one-ulp
  difference in a success probability can flip a ``u < p`` draw.  The
  binomial CDF itself is elementwise-identical between scipy's scalar and
  vector paths and is evaluated vectorized.
* Table building is *setup* in the sense of the array-backend seam
  (host numpy + scipy); only the serving kernels
  (:meth:`serve_round` / :meth:`_apply_outcomes`) are behind
  ``active_backend().xp`` and registered with the no-raw-``np`` lint.

:class:`TagLinkView` is a per-tag window onto the store, duck-typed to
:class:`TagLinkState`: handoff still "migrates the link object" (the view
rides in :class:`~repro.network.fleet.TagState` untouched), snapshots are
field-identical, and its scalar :meth:`~TagLinkView.attempt_frame` lets
unit drills poke a single tag mid-run without leaving the store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigError
from repro.mac.arq import StopAndWaitARQ
from repro.mac.rate_adapt import CodingOption, LinkProfile, RateOption
from repro.network.link import FrameOutcome
from repro.utils.backend import active_backend

__all__ = ["LinkStateStore", "RoundServe", "TagLinkView"]


@dataclass(frozen=True)
class RoundServe:
    """One vectorized round's served prefix, in service order."""

    #: Tag ids served this round (the budget-limited schedule prefix).
    served: np.ndarray
    #: Per-served-tag CRC outcome (True = delivered).
    ok: np.ndarray
    #: Per-served-tag ARQ-budget exhaustion (True = frame abandoned).
    abandoned: np.ndarray
    #: Per-served-tag rate rung *at round start* (the rung charged).
    rung: np.ndarray
    #: Per-served-tag airtime charged (s).
    airtime_s: np.ndarray
    #: Airtime consumed after this round, including the carried-in usage.
    used_s: float

    @property
    def n_served(self) -> int:
        return int(self.served.shape[0])

    @property
    def n_delivered(self) -> int:
        return int(self.ok.sum())

    @property
    def n_abandoned(self) -> int:
        return int(self.abandoned.sum())

    @property
    def n_retry(self) -> int:
        return self.n_served - self.n_delivered - self.n_abandoned


class LinkStateStore:
    """Watchdog + ARQ + rate-streak state for ``n_tags`` tags, as arrays.

    Parameters mirror :class:`~repro.network.link.TagLinkState` (which
    documents the adaptation semantics); ``n_tags`` sizes the arrays.
    Tag ids index every array — a handoff needs no store operation at all,
    because link state was never keyed by reader in the first place.
    """

    def __init__(
        self,
        profile: LinkProfile,
        n_tags: int,
        coding: CodingOption | None = None,
        payload_bytes: int = 32,
        overhead_s: float = 0.01,
        raise_after: int = 3,
        fail_threshold: int = 3,
        recover_after: int = 3,
        arq: StopAndWaitARQ | None = None,
    ):
        if n_tags < 1:
            raise ConfigError("n_tags must be >= 1")
        if payload_bytes < 1:
            raise ConfigError("payload_bytes must be >= 1")
        if overhead_s < 0:
            raise ConfigError("overhead_s must be non-negative")
        if raise_after < 1:
            raise ConfigError("raise_after must be >= 1")
        if fail_threshold < 1:
            raise ConfigError("fail_threshold must be >= 1")
        if recover_after < 1:
            raise ConfigError("recover_after must be >= 1")
        self.profile = profile
        self.coding = coding if coding is not None else CodingOption(255, 223)
        self.payload_bytes = payload_bytes
        self.overhead_s = overhead_s
        self.raise_after = raise_after
        self.fail_threshold = fail_threshold
        self.recover_after = recover_after
        self.arq = arq or StopAndWaitARQ()
        self.n_tags = int(n_tags)

        #: The PHY rate ladder, ascending; rung index is the state.
        self.ladder: list[int] = [int(r.rate_bps) for r in profile.rates]
        self._rate_by_rung: list[RateOption] = list(profile.rates)
        self.n_rungs = len(self.ladder)
        self.rate_by_rung_bps = np.asarray(self.ladder, dtype=np.int64)

        # Airtime table, built with the exact scalar formula of
        # TagLinkState.frame_airtime_s so FrameOutcome.airtime_s and the
        # budget left-fold stay bitwise-reference.
        self._bits_on_air = self.payload_bytes * 8 / self.coding.code_rate
        self.airtime_by_rung = np.asarray(
            [self.overhead_s + self._bits_on_air / r for r in self.ladder],
            dtype=np.float64,
        )

        # ---- the struct-of-arrays state (tag id indexes every array) ----
        self.rung = np.zeros(self.n_tags, dtype=np.int64)  # probe at rung 0
        self.success_streak = np.zeros(self.n_tags, dtype=np.int64)
        self.pending_attempts = np.zeros(self.n_tags, dtype=np.int64)
        self.consecutive_failures = np.zeros(self.n_tags, dtype=np.int64)
        self.consecutive_successes = np.zeros(self.n_tags, dtype=np.int64)
        #: Recovery hysteresis: True from a rate fallback until
        #: ``recover_after`` consecutive clean frames (``recovery_ready``
        #: in the scalar watchdog is the negation of this flag).
        self.fallback_active = np.zeros(self.n_tags, dtype=bool)
        self.delivered = np.zeros(self.n_tags, dtype=np.int64)
        self.abandoned = np.zeros(self.n_tags, dtype=np.int64)
        self.attempts = np.zeros(self.n_tags, dtype=np.int64)

        #: Block-success rows keyed ``(reader_key, occlusion_db, rung)``,
        #: filled lazily per served tag (``_success_built`` masks what's
        #: valid) — a round serves a budget-limited prefix, so building a
        #: whole-population row per key would be mostly wasted work.
        self._success_rows: dict[tuple, np.ndarray] = {}
        self._success_built: dict[tuple, np.ndarray] = {}

    # ----------------------------------------------------------- per-tag API

    def view(self, tag_id: int) -> "TagLinkView":
        """A :class:`TagLinkView` window onto one tag's slots."""
        return TagLinkView(self, tag_id)

    def success_probability(
        self, tag_id: int, snr_db: float, extra_fail_prob: float = 0.0
    ) -> float:
        """Scalar per-attempt success probability (reference semantics)."""
        rate = self._rate_by_rung[int(self.rung[tag_id])]
        p = self.coding.block_success(rate.ber(snr_db))
        return p * (1.0 - extra_fail_prob)

    def frame_airtime_s(self, tag_id: int, rate_bps: int | None = None) -> float:
        """Airtime of one attempt (default: the tag's current rung)."""
        if rate_bps is None:
            return float(self.airtime_by_rung[int(self.rung[tag_id])])
        return self.overhead_s + self._bits_on_air / rate_bps

    def attempt_one(
        self,
        tag_id: int,
        snr_db: float,
        rng: np.random.Generator,
        extra_fail_prob: float = 0.0,
    ) -> FrameOutcome:
        """One served slot for one tag — the scalar reference transition
        applied in place on the arrays (exactly one draw from ``rng``)."""
        rung = int(self.rung[tag_id])
        rate = self.ladder[rung]
        airtime = float(self.airtime_by_rung[rung])
        p = self.success_probability(tag_id, snr_db, extra_fail_prob)
        ok = bool(rng.random() < p)
        self.attempts[tag_id] += 1
        abandoned = False
        if ok:
            # Watchdog record(True), then streak accounting + raise gate.
            self.consecutive_failures[tag_id] = 0
            successes = int(self.consecutive_successes[tag_id]) + 1
            self.consecutive_successes[tag_id] = successes
            if self.fallback_active[tag_id] and successes >= self.recover_after:
                self.fallback_active[tag_id] = False
            self.delivered[tag_id] += 1
            self.pending_attempts[tag_id] = 0
            streak = int(self.success_streak[tag_id]) + 1
            if streak >= self.raise_after and not self.fallback_active[tag_id]:
                if rung + 1 < self.n_rungs:
                    self.rung[tag_id] = rung + 1
                streak = 0
            self.success_streak[tag_id] = streak
        else:
            # Watchdog record(False): threshold => fallback one rung and
            # enter recovery hysteresis; then the ARQ window accounting.
            self.consecutive_successes[tag_id] = 0
            self.success_streak[tag_id] = 0
            failures = int(self.consecutive_failures[tag_id]) + 1
            if failures >= self.fail_threshold:
                self.consecutive_failures[tag_id] = 0
                self.fallback_active[tag_id] = True
                if rung > 0:
                    self.rung[tag_id] = rung - 1
            else:
                self.consecutive_failures[tag_id] = failures
            pending = int(self.pending_attempts[tag_id]) + 1
            if pending >= self.arq.max_attempts:
                self.abandoned[tag_id] += 1
                self.pending_attempts[tag_id] = 0
                abandoned = True
            else:
                self.pending_attempts[tag_id] = pending
        return FrameOutcome(
            delivered=ok, abandoned=abandoned, rate_bps=rate, airtime_s=airtime
        )

    def snapshot(self, tag_id: int) -> dict:
        """Plain-data migration snapshot, field-identical to the scalar
        :meth:`TagLinkState.snapshot` (the handoff tests' contract)."""
        return {
            "rate_bps": self.ladder[int(self.rung[tag_id])],
            "pending_attempts": int(self.pending_attempts[tag_id]),
            "success_streak": int(self.success_streak[tag_id]),
            "consecutive_failures": int(self.consecutive_failures[tag_id]),
            "consecutive_successes": int(self.consecutive_successes[tag_id]),
            "recovery_ready": not bool(self.fallback_active[tag_id]),
            "delivered": int(self.delivered[tag_id]),
            "abandoned": int(self.abandoned[tag_id]),
            "attempts": int(self.attempts[tag_id]),
        }

    # ------------------------------------------------------ success tables

    def _success_values(
        self,
        reader_key,
        occlusion_db: float,
        rung: int,
        snr_col: np.ndarray,
        tags: np.ndarray,
    ) -> np.ndarray:
        """Cached block-success probabilities for ``tags`` at one rung.

        ``snr_col`` is the reader's static per-tag SNR column; the cache
        is keyed by value on ``(reader_key, occlusion_db, rung)`` so an
        occlusion change simply selects (or starts filling) a different
        row — there is no invalidation protocol to get wrong.  Entries are
        computed only for tags actually served under this key.
        """
        key = (reader_key, occlusion_db, rung)
        row = self._success_rows.get(key)
        if row is None:
            row = np.empty(self.n_tags, dtype=np.float64)
            built = np.zeros(self.n_tags, dtype=bool)
            self._success_rows[key] = row
            self._success_built[key] = built
        else:
            built = self._success_built[key]
        missing = tags[~built[tags]]
        if missing.size:
            row[missing] = self._build_success_row(rung, snr_col[missing] - occlusion_db)
            built[missing] = True
        return row[tags]

    def _build_success_row(self, rung: int, snr_eff: np.ndarray) -> np.ndarray:
        """Block success at one rung for a vector of effective SNRs —
        bitwise the scalar path.

        The subtract/divide steps vectorize exactly (IEEE ops are
        correctly rounded elementwise); the two ``pow`` steps are run per
        element with Python floats because numpy's SIMD ``power`` is not
        last-bit identical to C ``pow`` (see module docstring); the
        binomial CDF vectorizes exactly and dominates the build cost.
        """
        rate = self._rate_by_rung[rung]
        coding = self.coding
        exponent = 2.0 + (snr_eff - rate.threshold_db) / rate.waterfall_db
        # RateOption.ber: clip(10 ** -e, 1e-12, 0.5), elementwise-exact.
        ber = [min(max(10.0 ** (-e), 1e-12), 0.5) for e in exponent.tolist()]
        # CodingOption.block_success: symbol error then RS block decode.
        symbol_error = [1.0 - (1.0 - b) ** 8 for b in ber]
        if coding.t == 0:
            row = np.asarray(
                [(1.0 - s) ** coding.n for s in symbol_error], dtype=np.float64
            )
        else:
            row = np.asarray(
                stats.binom.cdf(coding.t, coding.n, np.asarray(symbol_error)),
                dtype=np.float64,
            )
        return row

    # ------------------------------------------------------ the round kernel

    def serve_round(
        self,
        order,
        snr_col,
        occlusion_db: float,
        collision_prob: float,
        budget_s: float,
        used_s: float,
        rngs,
        reader_key,
    ) -> RoundServe:
        """Serve the budget-limited prefix of a reader's rotated schedule.

        Parameters
        ----------
        order:
            Tag ids in service order (the rotated TDMA schedule).
        snr_col:
            The reader's static per-tag SNR column (indexed by tag id).
        occlusion_db / collision_prob:
            The reader's current impairment terms, broadcast over the
            round (the :mod:`repro.faults.network` injector outputs).
        budget_s / used_s:
            Round airtime budget and the airtime already consumed
            (discovery service) — the left-fold starts at ``used_s``.
        rngs:
            Per-tag generators; exactly one uniform is drawn from each
            *served* tag's own stream, in service order.
        reader_key:
            Success-row cache key component (the reader id).
        """
        xp = active_backend().xp
        ids = xp.asarray(order, dtype=xp.int64)
        rung_o = self.rung[ids]
        air = self.airtime_by_rung[rung_o]
        # Left-fold accumulation from used_s, bitwise the reference's
        # sequential `used += airtime`; cumsum is defined sequentially.
        running = xp.cumsum(xp.concatenate((xp.asarray([used_s]), air)))
        n_served = int(xp.searchsorted(running[1:], budget_s, side="right"))
        served = ids[:n_served]
        rung_s = rung_o[:n_served]
        air_s = air[:n_served]
        used_after = float(running[n_served])
        if n_served == 0:
            empty_i = xp.zeros(0, dtype=xp.int64)
            empty_b = xp.zeros(0, dtype=bool)
            return RoundServe(
                served=empty_i,
                ok=empty_b,
                abandoned=empty_b,
                rung=empty_i,
                airtime_s=xp.zeros(0, dtype=xp.float64),
                used_s=used_after,
            )
        # Success probability: cached-table lookups + one broadcast multiply.
        p = xp.empty(n_served, dtype=xp.float64)
        for rung in xp.unique(rung_s).tolist():
            at_rung = rung_s == rung
            p[at_rung] = self._success_values(
                reader_key, occlusion_db, int(rung), snr_col, served[at_rung]
            )
        p = p * (1.0 - collision_prob)
        # One uniform per served tag, from that tag's own stream.
        draws = xp.fromiter(
            (rngs[t].random() for t in served.tolist()),
            dtype=xp.float64,
            count=n_served,
        )
        ok = draws < p
        abandoned = self._apply_outcomes(served, ok)
        return RoundServe(
            served=served,
            ok=ok,
            abandoned=abandoned,
            rung=rung_s,
            airtime_s=air_s,
            used_s=used_after,
        )

    def _apply_outcomes(self, served, ok):
        """Vectorized watchdog/streak/ARQ/rung transition for one round.

        ``served`` holds distinct tag ids, so every fancy-indexed
        read-modify-write below is alias-free.  Returns the per-served-tag
        abandonment mask (aligned with ``served``).
        """
        xp = active_backend().xp
        self.attempts[served] += 1
        s_ok = served[ok]
        s_fail = served[~ok]
        # --- CRC-clean branch: watchdog record, then streak/raise gate ---
        self.consecutive_failures[s_ok] = 0
        successes = self.consecutive_successes[s_ok] + 1
        self.consecutive_successes[s_ok] = successes
        still_falling_back = self.fallback_active[s_ok] & (
            successes < self.recover_after
        )
        self.fallback_active[s_ok] = still_falling_back
        self.delivered[s_ok] += 1
        self.pending_attempts[s_ok] = 0
        streak = self.success_streak[s_ok] + 1
        raise_gate = (streak >= self.raise_after) & ~still_falling_back
        rung_ok = self.rung[s_ok]
        self.rung[s_ok] = xp.where(
            raise_gate & (rung_ok + 1 < self.n_rungs), rung_ok + 1, rung_ok
        )
        # The streak resets whenever the raise gate opens, even at the top
        # rung (the reference calls _raise_rate then zeroes the streak).
        self.success_streak[s_ok] = xp.where(raise_gate, 0, streak)
        # --- CRC-fail branch: watchdog fallback, then the ARQ window ---
        self.consecutive_successes[s_fail] = 0
        self.success_streak[s_fail] = 0
        failures = self.consecutive_failures[s_fail] + 1
        threshold_hit = failures >= self.fail_threshold
        self.consecutive_failures[s_fail] = xp.where(threshold_hit, 0, failures)
        self.fallback_active[s_fail] |= threshold_hit
        rung_fail = self.rung[s_fail]
        self.rung[s_fail] = xp.where(
            threshold_hit & (rung_fail > 0), rung_fail - 1, rung_fail
        )
        pending = self.pending_attempts[s_fail] + 1
        exhausted = pending >= self.arq.max_attempts
        self.pending_attempts[s_fail] = xp.where(exhausted, 0, pending)
        self.abandoned[s_fail] += xp.asarray(exhausted, dtype=xp.int64)
        abandoned = xp.zeros(served.shape[0], dtype=bool)
        abandoned[~ok] = exhausted
        return abandoned


class TagLinkView:
    """One tag's window onto a :class:`LinkStateStore`.

    Duck-typed to :class:`~repro.network.link.TagLinkState` for everything
    the fleet layer and its tests touch: the adaptation queries, the
    scalar :meth:`attempt_frame`, and :meth:`snapshot`.  The view is the
    object a handoff "migrates" — it carries only ``(store, tag_id)``, so
    migration preserves every field by construction.
    """

    __slots__ = ("store", "tag_id")

    def __init__(self, store: LinkStateStore, tag_id: int):
        self.store = store
        self.tag_id = int(tag_id)

    # Shared policy objects, for parity with TagLinkState's surface.
    @property
    def profile(self) -> LinkProfile:
        return self.store.profile

    @property
    def coding(self) -> CodingOption:
        return self.store.coding

    @property
    def arq(self) -> StopAndWaitARQ:
        return self.store.arq

    @property
    def payload_bytes(self) -> int:
        return self.store.payload_bytes

    @property
    def overhead_s(self) -> float:
        return self.store.overhead_s

    @property
    def raise_after(self) -> int:
        return self.store.raise_after

    # Per-tag state, read from the arrays.
    @property
    def rung_index(self) -> int:
        return int(self.store.rung[self.tag_id])

    @property
    def rate_bps(self) -> int:
        return self.store.ladder[self.rung_index]

    @property
    def pending_attempts(self) -> int:
        return int(self.store.pending_attempts[self.tag_id])

    @property
    def success_streak(self) -> int:
        return int(self.store.success_streak[self.tag_id])

    @property
    def recovery_ready(self) -> bool:
        return not bool(self.store.fallback_active[self.tag_id])

    @property
    def delivered(self) -> int:
        return int(self.store.delivered[self.tag_id])

    @property
    def abandoned(self) -> int:
        return int(self.store.abandoned[self.tag_id])

    @property
    def attempts(self) -> int:
        return int(self.store.attempts[self.tag_id])

    def success_probability(self, snr_db: float, extra_fail_prob: float = 0.0) -> float:
        return self.store.success_probability(self.tag_id, snr_db, extra_fail_prob)

    def frame_airtime_s(self, rate_bps: int | None = None) -> float:
        return self.store.frame_airtime_s(self.tag_id, rate_bps)

    def attempt_frame(
        self,
        snr_db: float,
        rng: np.random.Generator,
        extra_fail_prob: float = 0.0,
    ) -> FrameOutcome:
        return self.store.attempt_one(self.tag_id, snr_db, rng, extra_fail_prob)

    def snapshot(self) -> dict:
        return self.store.snapshot(self.tag_id)
