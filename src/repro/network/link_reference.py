"""Frozen scalar per-tag link path: the vectorized engine's executable spec.

This module is a **verbatim freeze** of :class:`repro.network.link.
TagLinkState` as it stood before the struct-of-arrays
:class:`~repro.network.linkstore.LinkStateStore` replaced it on the fleet
hot path (the same freeze-then-vectorize pattern as
:mod:`repro.modem.dfe_reference` and :mod:`repro.lcm.response_reference`).
It is the ground truth the equivalence wall
(``tests/network/test_linkstore_equivalence.py``) and the fleet-scale
benchmark (``benchmarks/bench_fleet_scale.py``) drive against: for any
fleet config, chaos plan, and handoff sequence, the vectorized engine must
reproduce this path's per-tag ``snapshot()`` dicts,
:class:`~repro.network.link.FrameOutcome` sequences, and timeline digests
bit for bit.

Do not optimise this file.  Its per-slot dict lookups, scalar
``rng.random()`` draw, per-call :meth:`CodingOption.block_success`, and
O(n) ladder scan in ``_raise_rate`` are the *specification* of the
semantics (including the documented one-draw-per-attempt-per-tag-stream
determinism contract), kept runnable so equivalence is checked against
executed behaviour, never against a prose description.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.mac.arq import StopAndWaitARQ
from repro.mac.rate_adapt import CodingOption, LinkProfile, RateOption
from repro.mac.watchdog import LinkWatchdog
from repro.network.link import FrameOutcome

__all__ = ["ReferenceTagLinkState"]


class ReferenceTagLinkState:
    """Watchdog + ARQ + rate-streak state for one tag, reader-agnostic.

    Frozen scalar reference — see the module docstring.  The constructor
    signature and every public member mirror the pre-vectorization
    :class:`~repro.network.link.TagLinkState` exactly.
    """

    def __init__(
        self,
        profile: LinkProfile,
        coding: CodingOption | None = None,
        payload_bytes: int = 32,
        overhead_s: float = 0.01,
        raise_after: int = 3,
        fail_threshold: int = 3,
        recover_after: int = 3,
        arq: StopAndWaitARQ | None = None,
    ):
        if payload_bytes < 1:
            raise ConfigError("payload_bytes must be >= 1")
        if overhead_s < 0:
            raise ConfigError("overhead_s must be non-negative")
        if raise_after < 1:
            raise ConfigError("raise_after must be >= 1")
        self.profile = profile
        self.coding = coding if coding is not None else CodingOption(255, 223)
        self.payload_bytes = payload_bytes
        self.overhead_s = overhead_s
        self.raise_after = raise_after
        self.arq = arq or StopAndWaitARQ()
        ladder = [int(r.rate_bps) for r in profile.rates]
        self._rate_by_bps: dict[int, RateOption] = {
            int(r.rate_bps): r for r in profile.rates
        }
        self.watchdog = LinkWatchdog(
            rates=ladder,
            initial_rate_bps=ladder[0],  # probe at the most robust rung
            fail_threshold=fail_threshold,
            recover_after=recover_after,
            base_backoff_s=0.0,  # fleet airtime is charged by the scheduler
        )
        self.success_streak = 0
        #: Attempts already spent on the in-flight frame (ARQ window).
        self.pending_attempts = 0
        # Counters.
        self.delivered = 0
        self.abandoned = 0
        self.attempts = 0

    # -------------------------------------------------------------- queries

    @property
    def rate_bps(self) -> int:
        """The rung currently assigned to this tag."""
        return self.watchdog.current_rate_bps

    def success_probability(self, snr_db: float, extra_fail_prob: float = 0.0) -> float:
        """Per-attempt CRC success probability at an effective SNR.

        ``extra_fail_prob`` models schedule-corruption slot collisions —
        an independent failure mode multiplied into the PHY's block
        success."""
        rate = self._rate_by_bps[self.rate_bps]
        p = self.coding.block_success(rate.ber(snr_db))
        return p * (1.0 - extra_fail_prob)

    def frame_airtime_s(self, rate_bps: int | None = None) -> float:
        """Airtime of one attempt at a rate (default: the current rung)."""
        rate = self.rate_bps if rate_bps is None else rate_bps
        bits_on_air = self.payload_bytes * 8 / self.coding.code_rate
        return self.overhead_s + bits_on_air / rate

    # ------------------------------------------------------------ adaptation

    def attempt_frame(
        self,
        snr_db: float,
        rng: np.random.Generator,
        extra_fail_prob: float = 0.0,
    ) -> FrameOutcome:
        """One served TDMA slot: draw the CRC outcome, adapt, account ARQ.

        Exactly one random draw per attempt, from the *tag's* stream — so
        a tag's outcome sequence depends only on its own seed and how many
        slots it was served, never on other tags or readers.
        """
        rate = self.rate_bps
        airtime = self.frame_airtime_s(rate)
        p = self.success_probability(snr_db, extra_fail_prob)
        ok = bool(rng.random() < p)
        self.attempts += 1
        action = self.watchdog.record(ok)
        abandoned = False
        if ok:
            self.delivered += 1
            self.pending_attempts = 0
            self.success_streak += 1
            if self.success_streak >= self.raise_after and self.watchdog.recovery_ready:
                self._raise_rate()
                self.success_streak = 0
        else:
            self.success_streak = 0
            self.pending_attempts += 1
            if self.pending_attempts >= self.arq.max_attempts:
                # ARQ budget exhausted: the frame is abandoned and the
                # window opens for the next one.
                self.abandoned += 1
                self.pending_attempts = 0
                abandoned = True
            # Rate fallback already applied by the watchdog via `action`.
            del action
        return FrameOutcome(
            delivered=ok, abandoned=abandoned, rate_bps=rate, airtime_s=airtime
        )

    def _raise_rate(self) -> None:
        ladder = self.watchdog.ladder
        idx = ladder.index(self.rate_bps)
        if idx + 1 < len(ladder):
            self.watchdog.observe_rate(ladder[idx + 1])

    # ---------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Plain-data view of the migration-relevant state (tests pin
        that handoff preserves every field here)."""
        return {
            "rate_bps": self.rate_bps,
            "pending_attempts": self.pending_attempts,
            "success_streak": self.success_streak,
            "consecutive_failures": self.watchdog.consecutive_failures,
            "consecutive_successes": self.watchdog.consecutive_successes,
            "recovery_ready": self.watchdog.recovery_ready,
            "delivered": self.delivered,
            "abandoned": self.abandoned,
            "attempts": self.attempts,
        }
