"""Multi-reader fleet layer: readers, tags, handoff, chaos tolerance.

The paper's system is one reader and one tag; a deployment is a *fleet* —
many luminaire readers covering many tags, with readers failing, schedules
corrupting, and fields of view getting blocked.  This package hosts that
scale on a deterministic discrete-event core:

* :mod:`repro.network.core` — event queue + SeedSequence stream layout.
* :mod:`repro.network.reader` — reader health lifecycle and admission.
* :mod:`repro.network.link` — migration-safe per-tag link/ARQ state.
* :mod:`repro.network.linkstore` — the same state as struct-of-arrays;
  the vectorized round engine million-tag schedules run through.
* :mod:`repro.network.link_reference` — frozen scalar executable spec.
* :mod:`repro.network.fleet` — the simulator and its fault contract.

Chaos comes from :mod:`repro.faults.network`; results flow into the
sharded sweep engine via :mod:`repro.experiments.network_scale`.
"""

from repro.network.core import Event, EventQueue, spawn_streams
from repro.network.fleet import FleetConfig, FleetResult, FleetSimulator, TagState
from repro.network.link import FrameOutcome, TagLinkState
from repro.network.link_reference import ReferenceTagLinkState
from repro.network.linkstore import LinkStateStore, RoundServe, TagLinkView
from repro.network.reader import Reader, ReaderHealth

__all__ = [
    "Event",
    "EventQueue",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "FrameOutcome",
    "LinkStateStore",
    "Reader",
    "ReaderHealth",
    "ReferenceTagLinkState",
    "RoundServe",
    "TagLinkState",
    "TagLinkView",
    "TagState",
    "spawn_streams",
]
