"""Deterministic discrete-event core for the fleet simulator.

A classic calendar queue with one twist made explicit: **total determinism**.
Events at equal times are ordered by insertion sequence number, never by
payload identity or hash order, so a fleet run is a pure function of its
configuration and seed — the property every bit-identity guarantee upstream
(BatchRunner pool == serial, sweep resume == uninterrupted) rests on.

Randomness follows the BatchRunner SeedSequence idiom: one root
:class:`numpy.random.SeedSequence` spawns an indexed child per entity
(tag streams first, then reader streams, then the fault plan), so an
entity's draws depend only on its index — never on event interleaving.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Event", "EventQueue", "LazyStreams", "spawn_streams"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence: ``(time, seq)`` is the total order."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """A seeded-order min-heap of :class:`Event` with deterministic ties.

    ``push`` stamps a monotone sequence number, so two events scheduled for
    the same instant always pop in scheduling order — regardless of kind,
    payload, or heap internals.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule ``kind`` at ``time``; returns the stamped event."""
        if time < 0:
            raise ValueError(f"cannot schedule into negative time ({time})")
        event = Event(time=float(time), seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (ties: scheduling order)."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None


def _child_rng(root_seed: int, index: int) -> np.random.Generator:
    """The ``index``-th spawned child of ``SeedSequence(root_seed)``.

    Constructed directly via ``spawn_key=(index,)`` — bit-identical to
    ``SeedSequence(root_seed).spawn(n)[index]`` for any ``n > index``
    (spawning is just spawn-key bookkeeping), without materialising the
    other children.
    """
    seq = np.random.SeedSequence(int(root_seed), spawn_key=(index,))
    return np.random.default_rng(seq)


class LazyStreams:
    """Indexable window of per-entity child streams, realized on demand.

    Behaves like the eager ``list[Generator]`` it replaces — ``len``,
    indexing, and iteration — but a generator is only constructed (and
    then cached, so its draw position persists) the first time its index
    is touched.  A million-tag fleet where a round serves a few hundred
    tags pays for a few hundred streams, not a million; the streams
    themselves are identical either way.
    """

    def __init__(self, root_seed: int, offset: int, n: int):
        self._root_seed = int(root_seed)
        self._offset = int(offset)
        self._n = int(n)
        self._gens: dict[int, np.random.Generator] = {}

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> np.random.Generator:
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(f"stream index {index} out of range ({self._n} streams)")
        gen = self._gens.get(index)
        if gen is None:
            gen = _child_rng(self._root_seed, self._offset + index)
            self._gens[index] = gen
        return gen


def spawn_streams(
    root_seed: int, n_tags: int, n_readers: int
) -> tuple[
    LazyStreams,
    list[np.random.Generator],
    np.random.Generator,
    np.random.Generator,
]:
    """Index-derived per-entity generators from one root seed.

    Children follow a fixed layout — ``n_tags`` tag streams, then
    ``n_readers`` reader streams, then one fault stream and one deployment
    stream — so adding events or reordering execution can never shift
    which stream an entity owns.  Tag streams come back as a
    :class:`LazyStreams` window (identical streams, built on first use);
    the handful of reader/fault/deploy streams are realized eagerly.
    """
    root_seed = int(root_seed)
    tag_streams = LazyStreams(root_seed, 0, n_tags)
    reader_streams = [_child_rng(root_seed, n_tags + i) for i in range(n_readers)]
    fault_stream = _child_rng(root_seed, n_tags + n_readers)
    deploy_stream = _child_rng(root_seed, n_tags + n_readers + 1)
    return tag_streams, reader_streams, fault_stream, deploy_stream
