"""Deterministic discrete-event core for the fleet simulator.

A classic calendar queue with one twist made explicit: **total determinism**.
Events at equal times are ordered by insertion sequence number, never by
payload identity or hash order, so a fleet run is a pure function of its
configuration and seed — the property every bit-identity guarantee upstream
(BatchRunner pool == serial, sweep resume == uninterrupted) rests on.

Randomness follows the BatchRunner SeedSequence idiom: one root
:class:`numpy.random.SeedSequence` spawns an indexed child per entity
(tag streams first, then reader streams, then the fault plan), so an
entity's draws depend only on its index — never on event interleaving.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Event", "EventQueue", "spawn_streams"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence: ``(time, seq)`` is the total order."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """A seeded-order min-heap of :class:`Event` with deterministic ties.

    ``push`` stamps a monotone sequence number, so two events scheduled for
    the same instant always pop in scheduling order — regardless of kind,
    payload, or heap internals.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: str, **payload: Any) -> Event:
        """Schedule ``kind`` at ``time``; returns the stamped event."""
        if time < 0:
            raise ValueError(f"cannot schedule into negative time ({time})")
        event = Event(time=float(time), seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (ties: scheduling order)."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None


def spawn_streams(
    root_seed: int, n_tags: int, n_readers: int
) -> tuple[
    list[np.random.Generator],
    list[np.random.Generator],
    np.random.Generator,
    np.random.Generator,
]:
    """Index-derived per-entity generators from one root seed.

    Children are spawned in a fixed layout — ``n_tags`` tag streams, then
    ``n_readers`` reader streams, then one fault stream and one deployment
    stream — so adding events or reordering execution can never shift
    which stream an entity owns.
    """
    children = np.random.SeedSequence(int(root_seed)).spawn(n_tags + n_readers + 2)
    tag_streams = [np.random.default_rng(s) for s in children[:n_tags]]
    reader_streams = [
        np.random.default_rng(s) for s in children[n_tags : n_tags + n_readers]
    ]
    fault_stream = np.random.default_rng(children[-2])
    deploy_stream = np.random.default_rng(children[-1])
    return tag_streams, reader_streams, fault_stream, deploy_stream
