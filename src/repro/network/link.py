"""Per-tag link state: the object a handoff migrates, never resets.

The paper's single-reader MAC closes its adaptation loop inside
:class:`repro.mac.session.LinkSession`; at fleet scale each tag carries the
same adaptation state — watchdog-supervised rate position on the PHY
ladder, success streak, and the stop-and-wait ARQ window — in a compact,
migration-safe :class:`TagLinkState`.  When a tag hands off to a neighbor
reader the *state object moves with it*: the ARQ attempt count of the
in-flight frame, the rate rung, and the recovery-hysteresis position all
survive, so a handoff costs discovery latency but never replays delivered
frames or re-probes the ladder from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.mac.arq import StopAndWaitARQ
from repro.mac.rate_adapt import CodingOption, LinkProfile, RateOption
from repro.mac.watchdog import LinkWatchdog

__all__ = ["FrameOutcome", "TagLinkState"]


@dataclass(frozen=True)
class FrameOutcome:
    """One served TDMA slot, as accounted by the scheduler."""

    delivered: bool
    abandoned: bool
    rate_bps: int
    airtime_s: float


class TagLinkState:
    """Watchdog + ARQ + rate-streak state for one tag, reader-agnostic.

    Parameters
    ----------
    profile:
        The rate/coding database the ladder is built from.
    coding:
        Fixed Reed-Solomon option applied to every frame (fleet-scale runs
        pin the coding and adapt the PHY rate; per-frame coding adaptation
        stays a :class:`~repro.mac.session.LinkSession` concern).
    payload_bytes / overhead_s:
        Frame airtime model: ``overhead + payload_bits / rate``.
    raise_after / fail_threshold / recover_after:
        The adaptation loop's streak thresholds; ``recover_after`` is the
        watchdog's recovery hysteresis (no raise after a fallback until
        that many consecutive clean frames).
    arq:
        Stop-and-wait policy; the in-flight frame's attempt count is part
        of this state and survives handoff.
    """

    def __init__(
        self,
        profile: LinkProfile,
        coding: CodingOption | None = None,
        payload_bytes: int = 32,
        overhead_s: float = 0.01,
        raise_after: int = 3,
        fail_threshold: int = 3,
        recover_after: int = 3,
        arq: StopAndWaitARQ | None = None,
    ):
        if payload_bytes < 1:
            raise ConfigError("payload_bytes must be >= 1")
        if overhead_s < 0:
            raise ConfigError("overhead_s must be non-negative")
        if raise_after < 1:
            raise ConfigError("raise_after must be >= 1")
        self.profile = profile
        self.coding = coding if coding is not None else CodingOption(255, 223)
        self.payload_bytes = payload_bytes
        self.overhead_s = overhead_s
        self.raise_after = raise_after
        self.arq = arq or StopAndWaitARQ()
        ladder = [int(r.rate_bps) for r in profile.rates]
        self._rate_by_bps: dict[int, RateOption] = {
            int(r.rate_bps): r for r in profile.rates
        }
        self.watchdog = LinkWatchdog(
            rates=ladder,
            initial_rate_bps=ladder[0],  # probe at the most robust rung
            fail_threshold=fail_threshold,
            recover_after=recover_after,
            base_backoff_s=0.0,  # fleet airtime is charged by the scheduler
        )
        self.success_streak = 0
        #: Attempts already spent on the in-flight frame (ARQ window).
        self.pending_attempts = 0
        # Counters.
        self.delivered = 0
        self.abandoned = 0
        self.attempts = 0

    # -------------------------------------------------------------- queries

    @property
    def rate_bps(self) -> int:
        """The rung currently assigned to this tag."""
        return self.watchdog.current_rate_bps

    def success_probability(self, snr_db: float, extra_fail_prob: float = 0.0) -> float:
        """Per-attempt CRC success probability at an effective SNR.

        ``extra_fail_prob`` models schedule-corruption slot collisions —
        an independent failure mode multiplied into the PHY's block
        success."""
        rate = self._rate_by_bps[self.rate_bps]
        p = self.coding.block_success(rate.ber(snr_db))
        return p * (1.0 - extra_fail_prob)

    def frame_airtime_s(self, rate_bps: int | None = None) -> float:
        """Airtime of one attempt at a rate (default: the current rung)."""
        rate = self.rate_bps if rate_bps is None else rate_bps
        bits_on_air = self.payload_bytes * 8 / self.coding.code_rate
        return self.overhead_s + bits_on_air / rate

    # ------------------------------------------------------------ adaptation

    def attempt_frame(
        self,
        snr_db: float,
        rng: np.random.Generator,
        extra_fail_prob: float = 0.0,
    ) -> FrameOutcome:
        """One served TDMA slot: draw the CRC outcome, adapt, account ARQ.

        Exactly one random draw per attempt, from the *tag's* stream — so
        a tag's outcome sequence depends only on its own seed and how many
        slots it was served, never on other tags or readers.
        """
        rate = self.rate_bps
        airtime = self.frame_airtime_s(rate)
        p = self.success_probability(snr_db, extra_fail_prob)
        ok = bool(rng.random() < p)
        self.attempts += 1
        action = self.watchdog.record(ok)
        abandoned = False
        if ok:
            self.delivered += 1
            self.pending_attempts = 0
            self.success_streak += 1
            if self.success_streak >= self.raise_after and self.watchdog.recovery_ready:
                self._raise_rate()
                self.success_streak = 0
        else:
            self.success_streak = 0
            self.pending_attempts += 1
            if self.pending_attempts >= self.arq.max_attempts:
                # ARQ budget exhausted: the frame is abandoned and the
                # window opens for the next one.
                self.abandoned += 1
                self.pending_attempts = 0
                abandoned = True
            # Rate fallback already applied by the watchdog via `action`.
            del action
        return FrameOutcome(
            delivered=ok, abandoned=abandoned, rate_bps=rate, airtime_s=airtime
        )

    def _raise_rate(self) -> None:
        ladder = self.watchdog.ladder
        idx = ladder.index(self.rate_bps)
        if idx + 1 < len(ladder):
            self.watchdog.observe_rate(ladder[idx + 1])

    # ---------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Plain-data view of the migration-relevant state (tests pin
        that handoff preserves every field here)."""
        return {
            "rate_bps": self.rate_bps,
            "pending_attempts": self.pending_attempts,
            "success_streak": self.success_streak,
            "consecutive_failures": self.watchdog.consecutive_failures,
            "consecutive_successes": self.watchdog.consecutive_successes,
            "recovery_ready": self.watchdog.recovery_ready,
            "delivered": self.delivered,
            "abandoned": self.abandoned,
            "attempts": self.attempts,
        }
