"""Multi-reader fleet simulator: tags, readers, chaos — deterministically.

This is the network layer's integration point.  A :class:`FleetSimulator`
hosts ``n_readers`` readers and ``n_tags`` tags on one discrete-event
timeline (:mod:`repro.network.core`), drives per-tag link adaptation
through :class:`~repro.network.link.TagLinkState`, and plays a
:class:`~repro.faults.network.NetworkFaultPlan` against the deployment.

The fault-tolerance contract it implements:

* **Heartbeat-missed detection** — a tag that has not heard its reader's
  beacon for ``heartbeat_miss_threshold`` round intervals detaches and
  starts re-association.
* **Seeded-exponential-backoff re-association** — retry delays are drawn
  from the *tag's own* SeedSequence stream, so recovery timing is a pure
  function of the root seed.
* **Handoff without state loss** — the tag's :class:`TagLinkState`
  (rate rung, ARQ window, watchdog hysteresis) migrates untouched to the
  new reader; only discovery latency is paid.
* **Admission control / load shedding** — bounded schedules and discovery
  queues shed deterministically (shed-new) instead of collapsing.
* **Graceful degradation** — a RECOVERING reader serves at a reduced
  airtime duty; DEGRADED readers serve with SNR/collision impairments.

Determinism: every random draw comes from an index-derived per-entity
stream (:func:`~repro.network.core.spawn_streams`); event ties resolve by
scheduling order; metrics never touch RNG.  A run is therefore a pure
function of ``(config, fault_plan, root_seed)`` — the property the
handoff-determinism and sweep bit-identity tests pin.

Two serving engines share this timeline:

* ``engine="store"`` (default) — the vectorized round engine: per-tag
  link state lives in a struct-of-arrays
  :class:`~repro.network.linkstore.LinkStateStore` and a reader's whole
  round is one :meth:`~repro.network.linkstore.LinkStateStore.serve_round`
  kernel call (tags ride along as :class:`~repro.network.linkstore.
  TagLinkView` windows, so handoff still just migrates the link object).
* ``engine="reference"`` — the frozen scalar path
  (:class:`~repro.network.link_reference.ReferenceTagLinkState`, one
  Python call per served slot), kept as the executable spec.

Both draw exactly one uniform per served slot from the served tag's own
stream, in service order, so they are *bit-identical* — same per-tag
snapshots, same ``FrameOutcome`` sequences, same ``timeline_digest`` —
which ``tests/network/test_linkstore_equivalence.py`` enforces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, FailureReason, FailureStage
from repro.faults.network import NetworkFaultPlan
from repro.mac.rate_adapt import LinkProfile, default_profile
from repro.network.core import Event, EventQueue, spawn_streams
from repro.network.link import FrameOutcome, TagLinkState
from repro.network.link_reference import ReferenceTagLinkState
from repro.network.linkstore import LinkStateStore, TagLinkView
from repro.network.reader import Reader, ReaderHealth
from repro.obs import Observer, ensure_observer
from repro.optics.retroreflector import LinkBudget
from repro.utils.opcache import fingerprint

__all__ = ["FleetConfig", "FleetResult", "FleetSimulator", "TagState"]

#: Minimum tag-reader distance fed to the link budget (tags directly under
#: a luminaire still see a finite SNR, not a singularity).
_MIN_DISTANCE_M = 0.5


@dataclass(frozen=True)
class FleetConfig:
    """Deployment geometry, MAC timing, and fault-tolerance knobs."""

    n_readers: int = 3
    n_tags: int = 12
    duration_s: float = 30.0
    #: TDMA round cadence per reader; also the beacon (heartbeat) period.
    round_interval_s: float = 1.0
    reader_spacing_m: float = 3.0

    # Fault-tolerance contract.
    heartbeat_miss_threshold: int = 3
    reassoc_backoff_base_s: float = 0.25
    reassoc_backoff_factor: float = 2.0
    reassoc_backoff_cap_s: float = 2.0

    # Admission control.
    queue_capacity: int = 16
    discovery_queue_cap: int = 64
    discovery_budget_frac: float = 0.25
    discovery_cost_s: float = 0.005

    # Service model.
    airtime_duty: float = 0.5
    recovering_duty_factor: float = 0.5
    payload_bytes: int = 32
    overhead_s: float = 0.01
    raise_after: int = 3
    fail_threshold: int = 3
    recover_after: int = 3

    def __post_init__(self) -> None:
        if self.n_readers < 1:
            raise ConfigError("n_readers must be >= 1")
        if self.n_tags < 1:
            raise ConfigError("n_tags must be >= 1")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if self.round_interval_s <= 0:
            raise ConfigError("round_interval_s must be positive")
        if self.reader_spacing_m <= 0:
            raise ConfigError("reader_spacing_m must be positive")
        if self.heartbeat_miss_threshold < 1:
            raise ConfigError("heartbeat_miss_threshold must be >= 1")
        if self.reassoc_backoff_base_s <= 0:
            raise ConfigError("reassoc_backoff_base_s must be positive")
        if self.reassoc_backoff_factor < 1.0:
            raise ConfigError("reassoc_backoff_factor must be >= 1")
        if self.reassoc_backoff_cap_s < self.reassoc_backoff_base_s:
            raise ConfigError("reassoc_backoff_cap_s must be >= base")
        if not 0.0 < self.airtime_duty <= 1.0:
            raise ConfigError("airtime_duty must be in (0, 1]")
        if not 0.0 < self.recovering_duty_factor <= 1.0:
            raise ConfigError("recovering_duty_factor must be in (0, 1]")
        if not 0.0 <= self.discovery_budget_frac <= 1.0:
            raise ConfigError("discovery_budget_frac must be in [0, 1]")
        if self.discovery_cost_s <= 0:
            raise ConfigError("discovery_cost_s must be positive")

    @property
    def span_m(self) -> float:
        """Deployment extent: readers at ``(i + 0.5) * spacing``."""
        return self.n_readers * self.reader_spacing_m


@dataclass
class TagState:
    """Fleet-side view of one tag: placement, association, link state."""

    tag_id: int
    position_m: float
    #: The migration-safe link state: a scalar object (reference engine)
    #: or a :class:`TagLinkView` window onto the fleet's store.
    link: TagLinkState | TagLinkView | ReferenceTagLinkState
    #: Current reader, or None while detached / re-associating.
    reader_id: int | None = None
    #: Last time this tag heard its reader's beacon.
    last_heard: float = 0.0
    #: When the (now lost) reader was last heard — handoff latency anchor.
    silent_since: float | None = None
    #: The reader lost most recently (-1: never associated).
    prev_reader: int = -1
    reassoc_attempts: int = 0
    handoffs: int = 0
    detaches: int = 0
    handoff_latencies: list[float] = field(default_factory=list)


@dataclass
class FleetResult:
    """Everything a fleet run produced, plus a flat ``row()`` for sweeps."""

    config: FleetConfig
    root_seed: int
    fault_names: list[str]
    tags: list[TagState]
    readers: list[Reader]
    #: Reader health transitions: ``(time, reader_id, old, new)``.
    transitions: list[tuple[float, int, str, str]]
    #: Handoffs: ``(time, tag_id, from_reader, to_reader, latency_s)``.
    handoff_log: list[tuple[float, int, int, int, float]]
    events_processed: int
    #: The struct-of-arrays link store (``engine="store"`` runs); None for
    #: the frozen reference engine.  Aggregates below use it as an O(1)
    #: fast path — the values are identical either way.
    store: LinkStateStore | None = None

    # ------------------------------------------------------------ aggregates

    @property
    def delivered(self) -> int:
        if self.store is not None:
            return int(self.store.delivered.sum())
        return sum(t.link.delivered for t in self.tags)

    @property
    def abandoned(self) -> int:
        if self.store is not None:
            return int(self.store.abandoned.sum())
        return sum(t.link.abandoned for t in self.tags)

    @property
    def attempts(self) -> int:
        if self.store is not None:
            return int(self.store.attempts.sum())
        return sum(t.link.attempts for t in self.tags)

    def per_tag_delivered(self) -> np.ndarray:
        """Delivered-frame count per tag id (int64, length ``n_tags``)."""
        if self.store is not None:
            return self.store.delivered.copy()
        return np.fromiter(
            (t.link.delivered for t in self.tags), dtype=np.int64, count=len(self.tags)
        )

    @property
    def fairness_jain(self) -> float:
        """Jain fairness index over per-tag delivered frames.

        ``(sum x)^2 / (n * sum x^2)`` in [1/n, 1]; defined as 1.0 (perfect
        fairness, vacuously) when nothing was delivered at all.  Computed
        from exact integer counts, so it is engine- and worker-invariant.
        """
        x = self.per_tag_delivered()
        total = int(x.sum())
        if total == 0:
            return 1.0
        return float(total) ** 2 / (len(x) * float((x * x).sum()))

    def _goodput_scale_bps(self) -> float:
        return self.config.payload_bytes * 8 / self.config.duration_s

    @property
    def goodput_min_bps(self) -> float:
        """The worst-served tag's goodput — the fairness floor."""
        return float(self.per_tag_delivered().min()) * self._goodput_scale_bps()

    @property
    def goodput_median_bps(self) -> float:
        """Median per-tag goodput (typical tag, robust to stragglers)."""
        return float(np.median(self.per_tag_delivered())) * self._goodput_scale_bps()

    @property
    def goodput_bps(self) -> float:
        """Aggregate delivered payload rate over the whole run."""
        bits = self.delivered * self.config.payload_bytes * 8
        return bits / self.config.duration_s

    @property
    def handoffs(self) -> int:
        return sum(t.handoffs for t in self.tags)

    @property
    def unassociated_tags(self) -> list[int]:
        """Tags without a reader when the run ended."""
        return [t.tag_id for t in self.tags if t.reader_id is None]

    @property
    def orphaned_tags(self) -> list[int]:
        """The contract violation: tags left unassociated at end of run
        while at least one HEALTHY reader had schedule room.  Tags shed by
        a *full* fleet are load shedding (bounded overload), not orphans —
        the invariant is "no tag starves while capacity exists"."""
        if not any(
            r.health is ReaderHealth.HEALTHY and len(r.schedule) < r.capacity
            for r in self.readers
        ):
            return []
        return self.unassociated_tags

    def check_contract(self) -> FailureReason | None:
        """Classified violation of the no-orphans invariant, or None."""
        orphans = self.orphaned_tags
        if orphans:
            return FailureReason(
                FailureStage.NETWORK,
                "orphaned_tags",
                f"{len(orphans)} tag(s) permanently orphaned with a "
                f"HEALTHY reader available: {orphans}",
            )
        return None

    def row(self) -> dict:
        """Flat JSON-safe scalars — the sweep/journal record for this run.

        Includes a ``timeline_digest`` fingerprint of the transition and
        handoff logs so bit-identity tests can compare full dynamics, not
        just endpoint counters, across worker counts and resume."""
        latencies = [lat for t in self.tags for lat in t.handoff_latencies]
        return {
            "n_readers": self.config.n_readers,
            "n_tags": self.config.n_tags,
            "duration_s": self.config.duration_s,
            "root_seed": self.root_seed,
            "faults": ",".join(self.fault_names),
            "delivered": self.delivered,
            "abandoned": self.abandoned,
            "attempts": self.attempts,
            "goodput_bps": self.goodput_bps,
            "airtime_s": sum(r.airtime_s for r in self.readers),
            "frames_served": sum(r.frames_served for r in self.readers),
            "handoffs": self.handoffs,
            "detaches": sum(t.detaches for t in self.tags),
            "handoff_latency_mean_s": (
                float(sum(latencies) / len(latencies)) if latencies else 0.0
            ),
            "handoff_latency_max_s": float(max(latencies)) if latencies else 0.0,
            "shed_associations": sum(r.shed_associations for r in self.readers),
            "shed_discovery": sum(r.shed_discovery for r in self.readers),
            "discovery_served": sum(r.discovery_served for r in self.readers),
            "fairness_jain": self.fairness_jain,
            "goodput_min_bps": self.goodput_min_bps,
            "goodput_median_bps": self.goodput_median_bps,
            "orphaned_tags": len(self.orphaned_tags),
            "unassociated_tags": len(self.unassociated_tags),
            "transitions": len(self.transitions),
            "events_processed": self.events_processed,
            "timeline_digest": fingerprint(self.transitions, self.handoff_log),
        }


class FleetSimulator:
    """N readers x M tags under a seeded chaos plan, bit-reproducibly.

    Parameters
    ----------
    config:
        Deployment + contract knobs.
    fault_plan:
        Network-level chaos to play against the fleet (default: none).
    root_seed:
        Root of the SeedSequence tree; the *only* source of randomness.
    profile / budget:
        PHY rate ladder and distance->SNR model shared by every link.
    observer:
        Metrics sink; ``None`` means the no-op singleton.  Metrics are
        side-band only — enabling them never changes a single bit of the
        simulation (no RNG draws, no control flow).
    engine:
        ``"store"`` (default) serves rounds through the vectorized
        :class:`~repro.network.linkstore.LinkStateStore`; ``"reference"``
        runs the frozen scalar spec
        (:class:`~repro.network.link_reference.ReferenceTagLinkState`).
        Bit-identical by contract — the knob exists for the equivalence
        wall and the fleet-scale benchmark.
    record_frames:
        When True, every served slot's :class:`FrameOutcome` is appended
        to :attr:`frame_log` in global service order — the per-frame
        evidence the equivalence tests compare.  Off by default (a
        million-tag run should not grow a Python list per slot).
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        fault_plan: NetworkFaultPlan | None = None,
        root_seed: int = 0,
        profile: LinkProfile | None = None,
        budget: LinkBudget | None = None,
        observer: Observer | None = None,
        engine: str = "store",
        record_frames: bool = False,
    ):
        if engine not in ("store", "reference"):
            raise ConfigError(
                f"unknown fleet engine {engine!r} (expected 'store' or 'reference')"
            )
        self.config = config if config is not None else FleetConfig()
        self.fault_plan = fault_plan if fault_plan is not None else NetworkFaultPlan()
        if self.fault_plan.max_reader_id() >= self.config.n_readers:
            raise ConfigError(
                f"fault plan targets reader {self.fault_plan.max_reader_id()} "
                f"but the fleet has only {self.config.n_readers} readers"
            )
        self.root_seed = int(root_seed)
        self.profile = profile if profile is not None else default_profile()
        self.budget = budget if budget is not None else LinkBudget.wide_fov()
        self.obs = ensure_observer(observer)
        self.engine = engine
        self.record_frames = bool(record_frames)
        #: Served slots in global service order (only when record_frames).
        self.frame_log: list[FrameOutcome] = []

    # ----------------------------------------------------------------- setup

    def _build(self) -> None:
        cfg = self.config
        self._tag_rngs, self._reader_rngs, self._fault_rng, deploy = spawn_streams(
            self.root_seed, cfg.n_tags, cfg.n_readers
        )
        self.readers = [
            Reader(
                reader_id=i,
                position_m=(i + 0.5) * cfg.reader_spacing_m,
                capacity=cfg.queue_capacity,
                discovery_queue_cap=cfg.discovery_queue_cap,
            )
            for i in range(cfg.n_readers)
        ]
        positions = deploy.uniform(0.0, cfg.span_m, size=cfg.n_tags)
        if self.engine == "store":
            self._store: LinkStateStore | None = LinkStateStore(
                self.profile,
                cfg.n_tags,
                payload_bytes=cfg.payload_bytes,
                overhead_s=cfg.overhead_s,
                raise_after=cfg.raise_after,
                fail_threshold=cfg.fail_threshold,
                recover_after=cfg.recover_after,
            )
            links = [TagLinkView(self._store, i) for i in range(cfg.n_tags)]
        else:
            self._store = None
            links = [
                ReferenceTagLinkState(
                    self.profile,
                    payload_bytes=cfg.payload_bytes,
                    overhead_s=cfg.overhead_s,
                    raise_after=cfg.raise_after,
                    fail_threshold=cfg.fail_threshold,
                    recover_after=cfg.recover_after,
                )
                for i in range(cfg.n_tags)
            ]
        self.tags = [
            TagState(tag_id=i, position_m=float(positions[i]), link=links[i])
            for i in range(cfg.n_tags)
        ]
        # Static SNR matrix: geometry never changes mid-run; impairments
        # (occlusion dB) are applied per-frame on top.  One broadcast
        # snr_db call over the distance matrix (log10 vectorizes
        # elementwise-exact, so this matches the per-pair scalar build).
        reader_pos = np.asarray([r.position_m for r in self.readers])
        dist = np.maximum(
            np.abs(positions[:, None] - reader_pos[None, :]), _MIN_DISTANCE_M
        )
        self._snr = np.asarray(self.budget.snr_db(dist), dtype=np.float64)
        # Authoritative association bookkeeping, as arrays: beacons touch
        # every scheduled tag every round and the heartbeat check scans
        # every tag — per-object attribute walks would dominate a 100k-tag
        # run (for both engines; this is shared timeline bookkeeping, not
        # part of the frozen serve path).  ``TagState.last_heard`` is
        # synced back from ``_last_heard`` when the run finishes.
        self._last_heard = np.zeros(cfg.n_tags, dtype=np.float64)
        self._assoc = np.full(cfg.n_tags, -1, dtype=np.int64)
        self.frame_log = []
        self.transitions: list[tuple[float, int, str, str]] = []
        self.handoff_log: list[tuple[float, int, int, int, float]] = []
        self._events_processed = 0
        #: Per-reader discovery service cost (a storm can override it).
        self._discovery_cost = [cfg.discovery_cost_s] * cfg.n_readers

    def _schedule(self, queue: EventQueue) -> None:
        """Fixed-layout upfront schedule: faults, then rounds, then checks.

        Everything is pushed before the loop starts, in a deterministic
        order, so equal-time ties always resolve the same way: fault
        events fire before the poll round at the same instant."""
        cfg = self.config
        for t, kind, payload in self.fault_plan.events():
            if t <= cfg.duration_s:
                queue.push(t, kind, **payload)
        n_rounds = int(math.floor(cfg.duration_s / cfg.round_interval_s))
        for k in range(1, n_rounds + 1):
            t = k * cfg.round_interval_s
            for r in self.readers:
                queue.push(t, "poll_round", reader_id=r.reader_id)
        for k in range(1, n_rounds + 1):
            t = (k + 0.5) * cfg.round_interval_s
            if t <= cfg.duration_s:
                queue.push(t, "tag_check")

    def _associate_initial(self) -> None:
        """Best-SNR admission in tag-id order at t=0; shed tags enter the
        re-association loop immediately (their backoff starts at zero
        attempts, drawn from their own stream in the event loop)."""
        if self._associate_initial_batch():
            return
        for tag in self.tags:
            if not self._try_associate(tag, now=0.0, initial=True):
                tag.silent_since = 0.0

    def _associate_initial_batch(self) -> bool:
        """Whole-fleet t=0 admission in one argmax, when no queue fills.

        At t=0 every reader is HEALTHY and unimpaired (fault events have
        not fired — they are dispatched after association), so each tag's
        candidate order is ``(-snr, reader_id)`` and ``argmax`` over the
        static SNR matrix reproduces the sequential greedy pick exactly —
        *provided no reader overflows*, since then admission never sheds
        and later tags never spill to their second choice.  If any reader
        would overflow, fall back to the sequential path (returns False).
        """
        best = np.argmax(self._snr, axis=1)  # ties -> lowest reader id
        counts = np.bincount(best, minlength=len(self.readers))
        if any(
            int(counts[r.reader_id]) > r.capacity for r in self.readers
        ):
            return False
        for reader in self.readers:
            ids = (best == reader.reader_id).nonzero()[0]  # tag-id order
            reader.schedule.extend(ids.tolist())
            reader._members.update(reader.schedule)
            reader._sched_arr = None
            reader.max_queue_depth = max(reader.max_queue_depth, len(reader.schedule))
        self._assoc[:] = best
        for tag in self.tags:
            tag.reader_id = int(best[tag.tag_id])
        return True

    # -------------------------------------------------------------- run loop

    def run(self) -> FleetResult:
        """Execute the timeline; returns the full :class:`FleetResult`."""
        self._build()
        queue = EventQueue()
        self._schedule(queue)
        self._associate_initial()
        # Shed tags from initial association retry via the event loop.
        for tag in self.tags:
            if tag.reader_id is None:
                self._schedule_reassoc(tag, now=0.0, queue=queue)
        while len(queue):
            event = queue.pop()
            if event.time > self.config.duration_s:
                continue
            self._dispatch(event, queue)
            self._events_processed += 1
        # Sync the array-held beacon times back onto the tag objects so
        # the result's TagStates read as they always did.
        heard = self._last_heard.tolist()
        for tag in self.tags:
            tag.last_heard = heard[tag.tag_id]
        result = FleetResult(
            config=self.config,
            root_seed=self.root_seed,
            fault_names=self.fault_plan.names,
            tags=self.tags,
            readers=self.readers,
            transitions=self.transitions,
            handoff_log=self.handoff_log,
            events_processed=self._events_processed,
            store=self._store,
        )
        if self.obs.enabled:
            self.obs.gauge("network.orphaned_tags", len(result.orphaned_tags))
            self.obs.gauge("network.unassociated_tags", len(result.unassociated_tags))
            for r in self.readers:
                self.obs.gauge(
                    "network.reader_queue_depth", len(r.schedule), reader=str(r.reader_id)
                )
                self.obs.gauge(
                    "network.reader_airtime_s", r.airtime_s, reader=str(r.reader_id)
                )
        return result

    def _dispatch(self, event: Event, queue: EventQueue) -> None:
        kind, p, now = event.kind, event.payload, event.time
        if kind == "poll_round":
            self._poll_round(self.readers[p["reader_id"]], now)
        elif kind == "tag_check":
            self._tag_check(now, queue)
        elif kind == "reassoc":
            self._reassoc_attempt(self.tags[p["tag_id"]], now, queue)
        elif kind == "reader_crash":
            self._with_transition(p["reader_id"], now, Reader.crash)
        elif kind == "reader_restart":
            self._with_transition(p["reader_id"], now, Reader.restart)
        elif kind == "reader_recovered":
            self._with_transition(p["reader_id"], now, Reader.recovered)
        elif kind == "corruption_start":
            self._impair(p["reader_id"], now, collision_prob=p["collision_prob"])
        elif kind == "corruption_end":
            self._impair(p["reader_id"], now, collision_prob=0.0)
        elif kind == "occlusion_start":
            self._impair(p["reader_id"], now, occlusion_db=p["snr_penalty_db"])
        elif kind == "occlusion_end":
            self._impair(p["reader_id"], now, occlusion_db=0.0)
        elif kind == "discovery_storm":
            self._discovery_storm(p, now)
        else:  # pragma: no cover - schedule bug, not reachable from API
            raise RuntimeError(f"unknown event kind {kind!r}")

    # ------------------------------------------------------------- handlers

    def _with_transition(self, reader_id: int, now: float, action) -> None:
        reader = self.readers[reader_id]
        old = reader.health
        action(reader)
        if reader.health is not old:
            self.transitions.append((now, reader_id, old.value, reader.health.value))
            if self.obs.enabled:
                self.obs.count(
                    "network.reader_transitions_total",
                    reader=str(reader_id),
                    to=reader.health.value,
                )

    def _impair(self, reader_id: int, now: float, **fields) -> None:
        def apply(reader: Reader) -> None:
            for name, value in fields.items():
                setattr(reader, name, value)
            reader.settle_health()

        self._with_transition(reader_id, now, apply)

    def _discovery_storm(self, payload: dict, now: float) -> None:
        reader = self.readers[payload["reader_id"]]
        self._discovery_cost[reader.reader_id] = payload["request_cost_s"]
        queued, shed = reader.admit_discovery(payload["n_requests"])
        if self.obs.enabled:
            self.obs.count(
                "network.discovery_requests_total",
                queued,
                reader=str(reader.reader_id),
                outcome="queued",
            )
            if shed:
                self.obs.count(
                    "network.shed_total", shed, kind="discovery", reader=str(reader.reader_id)
                )
        del now

    def _poll_round(self, reader: Reader, now: float) -> None:
        """One TDMA round: beacon, serve discovery backlog, serve data."""
        if not reader.beaconing:
            return
        cfg = self.config
        budget_s = cfg.airtime_duty * cfg.round_interval_s
        if reader.health is ReaderHealth.RECOVERING:
            budget_s *= cfg.recovering_duty_factor
        # Beacon: every scheduled tag hears its heartbeat (one fancy-index
        # store instead of a per-tag attribute walk).
        self._last_heard[reader.schedule_array()] = now
        used = 0.0
        # Discovery backlog first, capped so a storm cannot starve data.
        if reader.pending_discovery:
            cost = self._discovery_cost[reader.reader_id]
            disc_budget = cfg.discovery_budget_frac * budget_s
            n = min(reader.pending_discovery, int(disc_budget / cost))
            reader.pending_discovery -= n
            reader.discovery_served += n
            used += n * cost
        # Data slots, round-robin from the rotation point, until budget.
        if self._store is not None:
            served, used = self._serve_store(reader, used, budget_s)
        else:
            served, used = self._serve_reference(reader, used, budget_s)
        reader.advance_rotation(served)
        reader.frames_served += served
        reader.airtime_s += used

    def _serve_store(self, reader: Reader, used: float, budget_s: float):
        """Vectorized data service: the whole round is one kernel call.

        ``network.frames_total`` is emitted as one batched count per
        (reader, outcome) per round — same totals and labels as the
        reference's per-slot counts, without a per-slot observer call.
        """
        order = reader.service_order_array()
        if order.shape[0] == 0:
            return 0, used
        rid = reader.reader_id
        res = self._store.serve_round(
            order,
            self._snr[:, rid],
            reader.occlusion_db,
            reader.collision_prob,
            budget_s,
            used,
            self._tag_rngs,
            reader_key=rid,
        )
        n_served = res.n_served
        if self.record_frames and n_served:
            ladder = self._store.ladder
            ok = res.ok.tolist()
            abandoned = res.abandoned.tolist()
            rungs = res.rung.tolist()
            airtimes = res.airtime_s.tolist()
            for i in range(n_served):
                self.frame_log.append(
                    FrameOutcome(
                        delivered=ok[i],
                        abandoned=abandoned[i],
                        rate_bps=ladder[rungs[i]],
                        airtime_s=airtimes[i],
                    )
                )
        if self.obs.enabled and n_served:
            counts = (
                ("delivered", res.n_delivered),
                ("abandoned", res.n_abandoned),
                ("retry", res.n_retry),
            )
            for label, n in counts:
                if n:
                    self.obs.count(
                        "network.frames_total", n, outcome=label, reader=str(rid)
                    )
        return n_served, res.used_s

    def _serve_reference(self, reader: Reader, used: float, budget_s: float):
        """Frozen scalar data service — one Python call per served slot.

        This loop is part of the executable spec (see
        :mod:`repro.network.link_reference`): do not optimise it."""
        served = 0
        for tag_id in reader.service_order():
            tag = self.tags[tag_id]
            airtime = tag.link.frame_airtime_s()
            if used + airtime > budget_s:
                break
            snr = float(self._snr[tag_id, reader.reader_id]) - reader.occlusion_db
            outcome = tag.link.attempt_frame(
                snr, self._tag_rngs[tag_id], extra_fail_prob=reader.collision_prob
            )
            used += outcome.airtime_s
            served += 1
            if self.record_frames:
                self.frame_log.append(outcome)
            if self.obs.enabled:
                label = "delivered" if outcome.delivered else (
                    "abandoned" if outcome.abandoned else "retry"
                )
                self.obs.count(
                    "network.frames_total", outcome=label, reader=str(reader.reader_id)
                )
        return served, used

    def _tag_check(self, now: float, queue: EventQueue) -> None:
        """Heartbeat-missed detection, in tag-id order.

        The scan is one vectorized predicate over the association arrays
        (``now - last_heard`` vectorizes elementwise-exact, so the stale
        set is identical to the per-tag scalar comparison); only the
        handful of stale tags pay the Python detach bookkeeping.
        """
        cfg = self.config
        deadline = cfg.heartbeat_miss_threshold * cfg.round_interval_s
        stale = ((self._assoc >= 0) & (now - self._last_heard > deadline)).nonzero()[0]
        for tag_id in stale.tolist():  # ascending == tag-id order
            tag = self.tags[tag_id]
            # Reader lost: detach and start re-association.
            self.readers[tag.reader_id].drop(tag.tag_id)
            tag.silent_since = float(self._last_heard[tag_id])
            tag.prev_reader = tag.reader_id
            tag.reader_id = None
            self._assoc[tag_id] = -1
            tag.reassoc_attempts = 0
            tag.detaches += 1
            if self.obs.enabled:
                self.obs.count("network.detach_total")
            self._schedule_reassoc(tag, now, queue)

    def _schedule_reassoc(self, tag: TagState, now: float, queue: EventQueue) -> None:
        """Seeded exponential backoff from the tag's own stream."""
        cfg = self.config
        nominal = min(
            cfg.reassoc_backoff_cap_s,
            cfg.reassoc_backoff_base_s * cfg.reassoc_backoff_factor**tag.reassoc_attempts,
        )
        jitter = 0.5 + self._tag_rngs[tag.tag_id].random()  # in [0.5, 1.5)
        t = now + nominal * jitter
        if t <= cfg.duration_s:
            queue.push(t, "reassoc", tag_id=tag.tag_id)

    def _reassoc_attempt(self, tag: TagState, now: float, queue: EventQueue) -> None:
        if tag.reader_id is not None:
            return
        if self._try_associate(tag, now):
            return
        tag.reassoc_attempts += 1
        self._schedule_reassoc(tag, now, queue)

    def _try_associate(self, tag: TagState, now: float, initial: bool = False) -> bool:
        """Admit at the best-SNR beaconing reader; handoff bookkeeping.

        Candidate order is ``(-effective_snr, reader_id)`` — fully
        deterministic.  The tag's :class:`TagLinkState` is untouched:
        handoff migrates it."""
        candidates = sorted(
            (r for r in self.readers if r.beaconing),
            key=lambda r: (
                -(float(self._snr[tag.tag_id, r.reader_id]) - r.occlusion_db),
                r.reader_id,
            ),
        )
        for reader in candidates:
            if reader.admit(tag.tag_id):
                tag.reader_id = reader.reader_id
                tag.last_heard = now
                self._assoc[tag.tag_id] = reader.reader_id
                self._last_heard[tag.tag_id] = now
                if not initial:
                    latency = now - (tag.silent_since if tag.silent_since is not None else now)
                    tag.handoffs += 1
                    tag.handoff_latencies.append(latency)
                    self.handoff_log.append(
                        (now, tag.tag_id, tag.prev_reader, reader.reader_id, latency)
                    )
                    if self.obs.enabled:
                        self.obs.count("network.handoffs_total")
                        self.obs.observe("network.handoff_latency_s", latency)
                tag.silent_since = None
                return True
        if self.obs.enabled and not initial:
            self.obs.count("network.reassoc_failures_total")
        return False
