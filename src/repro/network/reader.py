"""One reader in the fleet: health lifecycle, TDMA schedule, admission.

The health state machine is the fault-tolerance contract's backbone::

    HEALTHY <-> DEGRADED        (occlusion / schedule corruption)
    any     ->  DOWN            (crash)
    DOWN    ->  RECOVERING      (restart: beacon on air, re-admitting)
    RECOVERING -> HEALTHY       (recovery timer expires)

A DOWN reader is invisible — no beacon, no service; its schedule state is
lost with the process.  A RECOVERING reader beacons and admits tags but
serves data at a reduced airtime budget.  DEGRADED readers serve normally
but their links carry the occlusion SNR penalty and/or corruption
collision probability.

Admission control is a bounded queue with a deterministic shed policy:
the schedule holds at most ``capacity`` tags and the discovery backlog at
most ``discovery_queue_cap`` requests; arrivals beyond either bound are
shed immediately (shed-new) and counted — overload degrades goodput
gracefully instead of collapsing the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import ConfigError

__all__ = ["Reader", "ReaderHealth"]


class ReaderHealth(str, Enum):
    """Lifecycle states of a reader."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"
    RECOVERING = "recovering"


@dataclass
class Reader:
    """Reader state: identity, geometry, health, schedule, counters."""

    reader_id: int
    position_m: float
    capacity: int = 16
    discovery_queue_cap: int = 64

    health: ReaderHealth = ReaderHealth.HEALTHY
    #: Associated tag ids, in admission order (the TDMA schedule).
    schedule: list[int] = field(default_factory=list)
    #: Membership mirror of :attr:`schedule` so admission checks are O(1)
    #: — a 100k-tag association wave is otherwise quadratic in the list.
    _members: set[int] = field(default_factory=set, repr=False, compare=False)
    #: Cached ndarray mirror of :attr:`schedule` (None = stale), so the
    #: per-round beacon/serve paths never rebuild a big array per round.
    _sched_arr: np.ndarray | None = field(default=None, repr=False, compare=False)
    #: Round-robin rotation offset so budget-limited rounds are fair.
    next_slot: int = 0
    #: Pending discovery requests (admission queue for joins/storms).
    pending_discovery: int = 0
    #: Occlusion penalty on every link through this reader (dB).
    occlusion_db: float = 0.0
    #: Extra per-frame collision probability while schedule is corrupted.
    collision_prob: float = 0.0

    # ------------------------------------------------------------- counters
    frames_served: int = 0
    airtime_s: float = 0.0
    shed_associations: int = 0
    shed_discovery: int = 0
    discovery_served: int = 0
    max_queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError("reader capacity must be >= 1")
        if self.discovery_queue_cap < 0:
            raise ConfigError("discovery_queue_cap must be >= 0")
        self._members = set(self.schedule)

    # --------------------------------------------------------------- health

    @property
    def beaconing(self) -> bool:
        """Whether tags can hear this reader at all."""
        return self.health is not ReaderHealth.DOWN

    @property
    def impaired(self) -> bool:
        """Whether an occlusion or corruption impairment is active."""
        return self.occlusion_db > 0.0 or self.collision_prob > 0.0

    def settle_health(self) -> None:
        """Re-derive HEALTHY/DEGRADED from active impairments.

        Never touches DOWN/RECOVERING — those are lifecycle states owned
        by crash/restart events, not impairment bookkeeping.
        """
        if self.health in (ReaderHealth.DOWN, ReaderHealth.RECOVERING):
            return
        self.health = ReaderHealth.DEGRADED if self.impaired else ReaderHealth.HEALTHY

    def crash(self) -> None:
        """Process death: schedule state is lost with the process."""
        self.health = ReaderHealth.DOWN
        self.schedule.clear()
        self._members.clear()
        self._sched_arr = None
        self.next_slot = 0
        self.pending_discovery = 0

    def restart(self) -> None:
        """Back on air, re-admitting, at reduced service."""
        if self.health is ReaderHealth.DOWN:
            self.health = ReaderHealth.RECOVERING

    def recovered(self) -> None:
        """Recovery timer expired; settle into HEALTHY/DEGRADED."""
        if self.health is ReaderHealth.RECOVERING:
            self.health = ReaderHealth.HEALTHY
            self.settle_health()

    # ------------------------------------------------------------ admission

    def admit(self, tag_id: int) -> bool:
        """Bounded-queue admission: shed-new beyond ``capacity``."""
        if not self.beaconing:
            return False
        if tag_id in self._members:
            return True
        if len(self.schedule) >= self.capacity:
            self.shed_associations += 1
            return False
        self.schedule.append(tag_id)
        self._members.add(tag_id)
        self._sched_arr = None
        self.max_queue_depth = max(self.max_queue_depth, len(self.schedule))
        return True

    def drop(self, tag_id: int) -> None:
        """Remove a tag from the schedule (detach / handoff away)."""
        if tag_id in self._members:
            idx = self.schedule.index(tag_id)
            self.schedule.remove(tag_id)
            self._members.discard(tag_id)
            self._sched_arr = None
            if idx < self.next_slot:
                self.next_slot -= 1
            if self.schedule:
                self.next_slot %= len(self.schedule)
            else:
                self.next_slot = 0

    def admit_discovery(self, n_requests: int) -> tuple[int, int]:
        """Queue discovery requests up to the cap; shed the rest.

        Returns ``(queued, shed)``."""
        room = max(self.discovery_queue_cap - self.pending_discovery, 0)
        queued = min(n_requests, room)
        shed = n_requests - queued
        self.pending_discovery += queued
        self.shed_discovery += shed
        return queued, shed

    # ----------------------------------------------------------- scheduling

    def service_order(self) -> list[int]:
        """This round's schedule, rotated so unserved tags go first next
        time (deterministic round-robin fairness under airtime budget)."""
        n = len(self.schedule)
        if n == 0:
            return []
        start = self.next_slot % n
        return self.schedule[start:] + self.schedule[:start]

    def schedule_array(self) -> np.ndarray:
        """The schedule as an int64 ndarray (cached until mutated)."""
        if self._sched_arr is None:
            self._sched_arr = np.asarray(self.schedule, dtype=np.int64)
        return self._sched_arr

    def service_order_array(self) -> np.ndarray:
        """:meth:`service_order` as an ndarray — same ids, same rotation,
        built by slicing the cached array instead of list concatenation."""
        sched = self.schedule_array()
        n = sched.shape[0]
        if n == 0:
            return sched
        start = self.next_slot % n
        if start == 0:
            return sched
        return np.concatenate((sched[start:], sched[:start]))

    def advance_rotation(self, n_served: int) -> None:
        """Rotate the service origin past the tags served this round."""
        if self.schedule:
            self.next_slot = (self.next_slot + n_served) % len(self.schedule)
