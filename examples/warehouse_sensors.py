#!/usr/bin/env python3
"""Scenario: a reader polling a warehouse shelf of battery-free sensors.

This is the paper's motivating IoT deployment: dozens of tags at assorted
distances and orientations, a single reader, and the rate-adaptive MAC of
§4.4 assigning each tag the fastest (rate, Reed-Solomon coding) pair its
SNR supports.  The script:

1. deploys N tags at random distances/orientations,
2. discovers them with the framed-ALOHA protocol,
3. assigns rates adaptively and with the weakest-tag baseline,
4. runs the TDMA schedule with stop-and-wait ARQ,
5. prints per-tag assignments and the aggregate throughput gain (Fig 18c).

Run:  python examples/warehouse_sensors.py [n_tags]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.mac import (
    FramedSlottedDiscovery,
    NetworkSimulator,
    TdmaScheduler,
    default_profile,
)


def main(n_tags: int = 12) -> None:
    rng = np.random.default_rng(2026)
    profile = default_profile()
    network = NetworkSimulator(profile=profile)

    tags = network.deploy(n_tags, rng)
    print(f"deployed {n_tags} tags between {network.min_distance_m} m "
          f"and {network.max_distance_m} m\n")

    discovery = FramedSlottedDiscovery().run([t.tag_id for t in tags], rng)
    print(f"discovery: {len(discovery.discovered)} tags in {discovery.rounds} rounds "
          f"({discovery.slots_used} slots, {discovery.collisions} collisions)\n")

    print(f"{'tag':>4} {'dist':>6} {'SNR':>7} {'assigned rate':>14} {'coding':>12} {'goodput':>10}")
    assignments = {}
    for t in sorted(tags, key=lambda t: t.distance_m):
        choice = profile.best_choice(t.snr_db)
        assignments[t.tag_id] = (choice, t.snr_db)
        coding = (
            "uncoded"
            if choice.coding.k == choice.coding.n
            else f"RS({choice.coding.n},{choice.coding.k})"
        )
        print(
            f"{t.tag_id:>4} {t.distance_m:>5.1f}m {t.snr_db:>6.1f}dB "
            f"{choice.rate.rate_bps / 1000:>12.0f}k {coding:>12} "
            f"{choice.goodput_bps / 1000:>8.2f}k"
        )

    scheduler = TdmaScheduler(profile)
    outcomes = scheduler.run_round_robin(assignments, frames_per_tag=5, rng=rng)
    delivered = sum(o.success for o in outcomes)
    airtime = sum(o.airtime_s for o in outcomes)
    print(f"\nTDMA round-robin: {delivered} frames delivered over {airtime:.1f} s of airtime "
          f"({len(outcomes) - delivered} retransmissions)")

    result = network.run(n_tags, rng)
    print(
        f"\nmean throughput: adaptive {result.adaptive_throughput_bps / 1000:.2f} kbps vs "
        f"baseline {result.baseline_throughput_bps / 1000:.2f} kbps "
        f"-> gain {result.gain:.2f}x  (paper: ~1.2x @ 4 tags, ~3.7x @ 100)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
