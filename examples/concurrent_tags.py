#!/usr/bin/env python3
"""Scenario: several tags talking at once — the §8 MIMO extension.

The paper's discussion sketches "efficient multiple access": a reader that
coordinates concurrent transmissions and separates them with "multiple
photodiodes placed strategically from optical channel diversity
perspective".  This script runs that system:

1. a reader with directive photodiode apertures aimed across the scene,
2. staggered channel sounding (each tag bursts while the rest idle),
3. zero-forcing separation of the concurrent payload,
4. per-tag DFE demodulation — and the aggregate rate multiple over TDMA.

Run:  python examples/concurrent_tags.py [n_tags]
"""

from __future__ import annotations

import sys

from repro.experiments.multiaccess import concurrent_uplink_study
from repro.modem.config import ModemConfig


def main(n_tags: int = 3) -> None:
    config = ModemConfig()
    n_apertures = n_tags + 1
    snr = 45.0 if n_tags <= 2 else 50.0
    print(f"{n_tags} tags transmitting {config.describe()}")
    print(f"reader: {n_apertures} directive apertures, {snr:.0f} dB per-aperture SNR\n")

    result = concurrent_uplink_study(
        n_tags=n_tags,
        n_apertures=n_apertures,
        snr_db=snr,
        n_symbols=128,
        rng=71,
    )
    print(f"channel sounding : H estimated to {result.channel_error:.1%} "
          f"(condition number {result.condition_number:.1f})")
    for tag, ber in enumerate(result.per_tag_ber):
        status = "clean" if ber == 0 else ("ok" if ber < 0.01 else "degraded")
        print(f"tag {tag}           : BER {ber:.4f}  [{status}]")
    aggregate = result.aggregate_rate_multiple * config.rate_bps
    print(f"\naggregate uplink : {aggregate / 1000:.0f} kbps concurrent vs "
          f"{config.rate_bps / 1000:.0f} kbps TDMA "
          f"-> {result.aggregate_rate_multiple:.0f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
