#!/usr/bin/env python3
"""Scenario: explore the modulation design space like the paper's §5.

For a target data rate, the LC relaxation pins W = L*T at ~4 ms, leaving a
family of (DSM order L, PQAM order P) operating points.  This script

1. prints the LC pulse response (the Fig 3 asymmetry DSM exploits),
2. enumerates the feasible operating points at several rates,
3. measures each point's minimum-distance performance index D (§5.1), and
4. reports the optimal parameters and their relative demodulation
   thresholds — the Table 3 ladder.

Run:  python examples/modulation_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    CodeMatrixScheme,
    candidate_configs,
    min_distance,
    relative_threshold_db,
)
from repro.lcm import LCResponseModel


def ascii_pulse() -> None:
    """Render the LC pulse response as a small ASCII plot."""
    model = LCResponseModel()
    pulse = model.pulse_response(charge_ticks=1, total_ticks=10, tick_s=0.5e-3, fs=8e3)
    print("LC pulse response (charge 0.5 ms, then relax; Fig 3 shape):")
    levels = 12
    for row in range(levels, -1, -2):
        threshold = row / levels * 2.0 - 1.0
        line = "".join("#" if s >= threshold else " " for s in pulse[::2])
        print(f"  {threshold:+.1f} |{line}")
    print("       +" + "-" * (pulse.size // 2) + "  (0..5 ms)")


def main() -> None:
    ascii_pulse()
    print()
    rng = np.random.default_rng(5)
    reference_d = None
    for rate in (1000, 2000, 4000, 8000, 16000):
        points = []
        for config in candidate_configs(rate):
            scheme = CodeMatrixScheme(config)
            d = min_distance(scheme, n_contexts=2, rng=rng).distance
            points.append((config, d))
        if not points:
            continue
        best_config, best_d = max(points, key=lambda p: p[1])
        if reference_d is None:
            reference_d = best_d
        rel = relative_threshold_db(reference_d, best_d)
        print(f"{rate / 1000:>4.0f} kbps: {len(points)} feasible points; best "
              f"L={best_config.dsm_order}, P={best_config.pqam_order}, "
              f"T={best_config.slot_s * 1e3:g} ms  "
              f"(D={best_d:.3g}, threshold +{rel:.1f} dB vs 1 kbps)")
        for config, d in sorted(points, key=lambda p: -p[1])[1:]:
            print(f"           runner-up L={config.dsm_order}, P={config.pqam_order}: "
                  f"D={d:.3g} (+{relative_threshold_db(best_d, d):.1f} dB worse)")
    print("\nPaper Table 3 ladder for comparison: 0 / 20 / 28 / 31 / 33 dB "
          "at 1 / 4 / 8 / 12 / 16 kbps.")


if __name__ == "__main__":
    main()
