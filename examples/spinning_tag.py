#!/usr/bin/env python3
"""Scenario: a tag on a rotating object — PQAM's rotation tolerance live.

The paper's "flexible orientation" design goal (§3.1): in the wild a tag's
polarization axis is arbitrary and may drift.  This script mounts a tag on
a slowly spinning fixture and sends a packet at each orientation, showing

* the constellation rotation the preamble estimates (2x the physical roll),
* that BER stays flat at every angle (Fig 16b), and
* what would happen to a naive fixed-axis PDM receiver instead (the
  cos^2 fade the paper contrasts PQAM against).

Run:  python examples/spinning_tag.py
"""

from __future__ import annotations

import numpy as np

from repro import LinkGeometry, ModemConfig, OpticalLink, PacketSimulator
from repro.optics.polarization import channel_coefficient


def main() -> None:
    config = ModemConfig()
    print(f"{'roll':>6} {'est. roll':>10} {'BER(4pkt)':>10} {'PQAM':>9} {'naive PDM fade':>15}")
    for roll_deg in range(0, 181, 22):
        roll = np.deg2rad(roll_deg)
        sim = PacketSimulator(
            config=config,
            link=OpticalLink(geometry=LinkGeometry(distance_m=4.0, roll_rad=roll)),
            payload_bytes=24,
            rng=11,
        )
        point = sim.measure_ber(n_packets=4, rng=roll_deg)
        # What the preamble's widely-linear regression recovered:
        search = (sim.frame.guard_slots + 2) * config.samples_per_slot
        detection = sim.receiver.frame.preamble.detect(
            sim.link.transmit(sim.transmitter.transmit(bytes(24)), config.fs, rng=1).samples,
            search_stop=search,
        )
        est = np.rad2deg(detection.corrector.estimated_roll_rad()) % 180
        # A fixed-axis PDM receiver sees its channel fade as cos(2*roll):
        fade = channel_coefficient(roll, 0.0)
        fade_db = 20 * np.log10(max(abs(fade), 1e-3))
        verdict = "reliable" if point.reliable else "degraded"
        print(
            f"{roll_deg:>5}d {est:>9.1f}d {point.ber:>10.4f} "
            f"{verdict:>9} {fade_db:>13.1f} dB"
        )
    print("\nPQAM holds full rate at every angle; a fixed-axis PDM channel "
          "fades as cos(2*roll) and dies at 45 deg.")


if __name__ == "__main__":
    main()
