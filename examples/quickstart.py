#!/usr/bin/env python3
"""Quickstart: send one RetroTurbo packet across a simulated room.

Builds the paper's default 8 Kbps link (DSM L=8, T=0.5 ms, 16-PQAM),
places the tag 3 m from the reader with a 25deg roll misalignment, pushes a
payload through the full pipeline — LC physics, polarization optics,
preamble detection, online channel training, 16-branch DFE — and prints
what happened.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LinkGeometry, ModemConfig, OpticalLink, PacketSimulator


def main() -> None:
    config = ModemConfig()  # the paper's default 8 Kbps operating point
    link = OpticalLink(
        geometry=LinkGeometry(distance_m=3.0, roll_rad=np.deg2rad(25.0))
    )
    print(f"operating point : {config.describe()}")
    print(f"link SNR        : {link.effective_snr_db():.1f} dB at 3.0 m, roll 25 deg")

    sim = PacketSimulator(config=config, link=link, payload_bytes=32, rng=7)

    payload = b"hello from a sub-milliwatt tag!!"
    result = sim.run_packet(payload=payload, rng=1)
    print(f"preamble        : detected={result.detected}, "
          f"SNR estimate {result.snr_est_db:.1f} dB")
    print(f"payload         : {result.n_bit_errors} bit errors in {result.n_bits} bits "
          f"(BER {result.ber:.2%}), CRC {'ok' if result.crc_ok else 'FAILED'}")

    point = sim.measure_ber(n_packets=10, rng=2)
    print(f"10-packet BER   : {point.ber:.4%}  "
          f"({'reliable' if point.reliable else 'unreliable'} by the paper's <1% bar)")

    power = sim.transmitter.transmit_power_w(payload)
    print(f"tag power       : {power * 1e3:.2f} mW (paper: ~0.8 mW)")


if __name__ == "__main__":
    main()
