#!/usr/bin/env python3
"""Quickstart: send RetroTurbo packets across a simulated room.

Builds the paper's default 8 Kbps link (DSM L=8, T=0.5 ms, 16-PQAM),
places the tag 3 m from the reader with a 25deg roll misalignment, runs
the full pipeline — LC physics, polarization optics, preamble detection,
online channel training, 16-branch DFE — through the unified run API,
and prints what happened.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LinkGeometry,
    ModemConfig,
    OpticalLink,
    PacketSimulator,
    ScenarioSpec,
    Session,
)


def main() -> None:
    # The one-stop path: a validated spec, an observed session, a report.
    spec = ScenarioSpec(distance_m=3.0, roll_deg=25.0, payload_bytes=32)
    report = Session(spec).run(n_packets=10)
    s = report.summary
    print(f"scenario        : {spec.describe()}")
    print(f"link SNR        : {s['snr_db']:.1f} dB at 3.0 m, roll 25 deg")
    print(f"10-packet BER   : {s['ber']:.4%}  (PER {s['packet_error_rate']:.0%}, "
          f"detection {s['detection_rate']:.0%})")
    print(f"stages traced   : {', '.join(sorted(report.span_names()))}")
    print(f"metric series   : {len(report.metric_names())}  "
          f"(report.write('run.json') saves the full artifact)")

    # The lower-level objects are still there when you need one packet's story.
    config = ModemConfig()  # the paper's default 8 Kbps operating point
    link = OpticalLink(
        geometry=LinkGeometry(distance_m=3.0, roll_rad=np.deg2rad(25.0))
    )
    sim = PacketSimulator(config=config, link=link, payload_bytes=32, rng=7)
    result = sim.measure_ber(n_packets=1, rng=1, keep_results=True).results[0]
    print(f"one packet      : detected={result.detected}, "
          f"SNR estimate {result.snr_est_db:.1f} dB, "
          f"{result.n_bit_errors} bit errors in {result.n_bits} bits, "
          f"CRC {'ok' if result.crc_ok else 'FAILED'}")

    payload = b"hello from a sub-milliwatt tag!!"
    power = sim.transmitter.transmit_power_w(payload)
    print(f"tag power       : {power * 1e3:.2f} mW (paper: ~0.8 mW)")


if __name__ == "__main__":
    main()
