"""§7.2.2 power microbenchmark.

Paper: the Monsoon-measured tag draws 0.8 mW at *both* 4 and 8 Kbps,
because the DSM symbol length (and hence the LC toggle schedule) is
rate-invariant; higher PQAM order only redistributes which binary-weighted
sub-pixels toggle.  Shape targets: ~0.8 mW, flat across 4/8/16 Kbps.
"""

from _common import emit, format_table

from repro.experiments.micro import power_report

PAPER_MW = 0.8


def test_micro_power(benchmark):
    out = power_report(rates_bps=[4000, 8000, 16000], payload_bytes=64, rng=52)
    rows = [
        (f"{rate / 1000:g}k", f"{PAPER_MW:.1f} mW", f"{p * 1e3:.2f} mW")
        for rate, p in out.items()
    ]
    emit(
        "micro_power",
        format_table(
            ["rate", "paper", "measured"],
            rows,
            title="Power microbenchmark (paper: 0.8 mW, rate-invariant)",
        ),
    )
    values = list(out.values())
    assert all(0.5e-3 < v < 1.2e-3 for v in values), "sub-mW budget"
    assert (max(values) - min(values)) / max(values) < 0.25, "rate-invariant"

    benchmark(power_report, rates_bps=[8000], payload_bytes=32, rng=1)
