"""Ablation — Karhunen-Loeve basis count S in online channel training.

Paper §4.3.3 frames offline training as picking "a few invariant bases"
that balance "reference precision and noise tolerance ... avoiding
overfitting".  This ablation measures that trade-off directly: S = 1
(scalar gain per LCM) underfits response-speed spread, S = 2 is the sweet
spot, and S = 3 *overfits* — its third basis has a tiny singular value, so
its per-packet coefficient is mostly noise and BER gets worse, exactly the
degradation the paper warns about.
"""

import numpy as np
from _common import emit, format_table

from repro.channel.link import OpticalLink
from repro.optics.geometry import LinkGeometry
from repro.phy.pipeline import PacketSimulator


def measure(n_bases: int, rng_seed: int) -> float:
    sim = PacketSimulator(
        link=OpticalLink(geometry=LinkGeometry(distance_m=4.0)),
        payload_bytes=24,
        bank_mode="trained",
        n_bases=n_bases,
        rng=rng_seed,
    )
    return sim.measure_ber(n_packets=4, rng=rng_seed + 1).ber


def test_ablation_kl_rank(benchmark):
    seeds = [11, 23, 37]
    bers = {s: float(np.mean([measure(s, seed) for seed in seeds])) for s in (1, 2, 3)}
    rows = [
        (s, f"{bers[s]:.4f}", note)
        for s, note in ((1, "scalar gain per LCM"), (2, "default"), (3, "overfits"))
    ]
    emit(
        "ablation_kl_rank",
        format_table(
            ["S (bases)", "BER (3 tags x 4 pkts)", "note"],
            rows,
            title="Ablation - KL basis count in online training",
        ),
    )
    assert bers[2] <= bers[1] + 1e-3, "S=2 must not lose to S=1"
    assert bers[3] > bers[2], "S=3 must show the overfitting penalty"

    benchmark(measure, 2, 11)
