"""DFE hot-path throughput: vectorized engine versus the frozen reference.

The committed artifact ``benchmarks/results/BENCH_dfe.json`` records, from
the *same run over the same packet grid*, the pre-rewrite scalar baseline
(:class:`ReferenceDFEDemodulator`, kept verbatim as the executable spec) and
the vectorized engine in both per-packet and block-batched form.  Committing
both numbers makes the speedup claim self-contained and diffable.

Protocol (chosen deliberately — see DESIGN.md):

* **Sustained workload**: one pass decodes the whole grid; throughput is
  total symbols over wall-clock for the pass.  Burst/best-of timing is
  avoided because the Python-loop-heavy reference profits far more from
  lucky scheduler/CPU phases than the vectorized engine does.
* **Median of passes**: each engine runs ``n_passes`` full passes after a
  shared warm-up; the median pass throughput is reported.
* **Bit-exactness is asserted in the same run** — a speedup over an engine
  producing different answers would be meaningless.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_dfe_speed.py            # full artifact
    PYTHONPATH=src python -m pytest benchmarks/bench_dfe_speed.py  # slow-lane smoke
"""

from __future__ import annotations

import argparse
import platform
import statistics
import time

import numpy as np
import pytest

from _common import emit, emit_json, format_table

from repro.channel.awgn import complex_awgn, noise_sigma_for_snr
from repro.modem.config import preset_for_rate
from repro.modem.dfe import DFEDemodulator
from repro.modem.dfe_reference import ReferenceDFEDemodulator
from repro.modem.references import ReferenceBank, assemble_waveform
from repro.modem.symbols import PQAMConstellation

#: Mixed operating SNRs so the grid exercises clean and errorful decodes.
GRID_SNRS_DB = (30.0, 22.0, 14.0)


def build_grid(config, bank, n_packets: int, n_symbols: int, seed: int):
    """A deterministic packet grid: (B, S) waveform block + priming levels."""
    constellation = PQAMConstellation(config.pqam_order)
    prime_n = config.tail_memory * config.dsm_order
    zeros = np.zeros(prime_n, dtype=int)
    rng = np.random.default_rng(seed)
    rows = []
    for p in range(n_packets):
        tx_i, tx_q = constellation.random_levels(n_symbols, rng)
        wave = assemble_waveform(
            bank, np.concatenate([zeros, tx_i]), np.concatenate([zeros, tx_q])
        )
        sigma = noise_sigma_for_snr(1.0, GRID_SNRS_DB[p % len(GRID_SNRS_DB)])
        noisy = wave + complex_awgn(wave.size, sigma, rng)
        rows.append(noisy[prime_n * config.samples_per_slot :])
    return np.stack(rows), zeros


def _timed_passes(decode_pass, n_symbols_total: int, n_passes: int) -> tuple[float, list[float]]:
    """Median symbols/sec over ``n_passes`` full-grid passes."""
    rates = []
    for _ in range(n_passes):
        t0 = time.perf_counter()
        decode_pass()
        rates.append(n_symbols_total / (time.perf_counter() - t0))
    return statistics.median(rates), rates


def run_benchmark(
    rate_bps: float = 8000,
    k_branches: int = 16,
    n_packets: int = 48,
    n_symbols: int = 128,
    n_passes: int = 3,
    seed: int = 7,
) -> dict:
    """Measure all three engines on one grid and return the artifact payload."""
    config = preset_for_rate(rate_bps)
    bank = ReferenceBank.nominal(config)
    z_block, zeros = build_grid(config, bank, n_packets, n_symbols, seed)
    total = n_packets * n_symbols

    reference = ReferenceDFEDemodulator(bank, k_branches=k_branches)
    vectorized = DFEDemodulator(bank, k_branches=k_branches)

    # Correctness first (doubles as warm-up for every engine).
    ref_results = [reference.demodulate(z, n_symbols, (zeros, zeros)) for z in z_block]
    blk_results = vectorized.demodulate_block(z_block, n_symbols, (zeros, zeros))
    for p, (r, b) in enumerate(zip(ref_results, blk_results)):
        np.testing.assert_array_equal(r.levels_i, b.levels_i, err_msg=f"packet {p} levels_i")
        np.testing.assert_array_equal(r.levels_q, b.levels_q, err_msg=f"packet {p} levels_q")
        assert r.mse == b.mse, f"packet {p}: mse {r.mse!r} != {b.mse!r}"

    ref_sps, ref_raw = _timed_passes(
        lambda: [reference.demodulate(z, n_symbols, (zeros, zeros)) for z in z_block],
        total,
        n_passes,
    )
    single_sps, single_raw = _timed_passes(
        lambda: [vectorized.demodulate(z, n_symbols, (zeros, zeros)) for z in z_block],
        total,
        n_passes,
    )
    block_sps, block_raw = _timed_passes(
        lambda: vectorized.demodulate_block(z_block, n_symbols, (zeros, zeros)),
        total,
        n_passes,
    )

    return {
        "benchmark": "dfe_hot_path",
        "operating_point": {
            "rate_bps": float(rate_bps),
            "k_branches": int(k_branches),
            "n_packets": int(n_packets),
            "n_symbols_per_packet": int(n_symbols),
            "snrs_db": list(GRID_SNRS_DB),
            "seed": int(seed),
        },
        "protocol": {
            "kind": "sustained single-pass grid decode, median of passes",
            "n_passes": int(n_passes),
            "bit_exact_checked": True,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "processor": platform.machine(),
        },
        "baseline_reference_sym_per_s": round(ref_sps, 1),
        "vectorized_single_sym_per_s": round(single_sps, 1),
        "vectorized_block_sym_per_s": round(block_sps, 1),
        "speedup_single_vs_reference": round(single_sps / ref_sps, 2),
        "speedup_block_vs_reference": round(block_sps / ref_sps, 2),
        "passes_sym_per_s": {
            "reference": [round(r, 1) for r in ref_raw],
            "vectorized_single": [round(r, 1) for r in single_raw],
            "vectorized_block": [round(r, 1) for r in block_raw],
        },
    }


def render(payload: dict) -> str:
    op = payload["operating_point"]
    rows = [
        ("reference (pre-rewrite)", payload["baseline_reference_sym_per_s"], 1.0),
        (
            "vectorized, per-packet",
            payload["vectorized_single_sym_per_s"],
            payload["speedup_single_vs_reference"],
        ),
        (
            "vectorized, block batch",
            payload["vectorized_block_sym_per_s"],
            payload["speedup_block_vs_reference"],
        ),
    ]
    return format_table(
        ["engine", "symbols/s", "speedup"],
        rows,
        title=(
            f"DFE hot path - {op['rate_bps'] / 1000:g} Kbps, K={op['k_branches']}, "
            f"{op['n_packets']}x{op['n_symbols_per_packet']} symbols"
        ),
    )


@pytest.mark.slow
def test_bench_dfe_speed():
    """Slow-lane smoke: regenerate BENCH_dfe.json and sanity-check the ratio.

    The assertion floor is deliberately below the committed ~5-6x figure:
    shared CI runners have wild run-to-run variance, and the committed
    artifact (generated on a quiet machine) is the recorded claim.
    """
    payload = run_benchmark()
    emit("BENCH_dfe_table", render(payload))
    path = emit_json("BENCH_dfe", payload)
    assert path.exists()
    assert payload["speedup_block_vs_reference"] >= 2.5
    assert payload["vectorized_block_sym_per_s"] > payload["baseline_reference_sym_per_s"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate-bps", type=float, default=8000)
    parser.add_argument("--k-branches", type=int, default=16)
    parser.add_argument("--packets", type=int, default=48)
    parser.add_argument("--symbols", type=int, default=128)
    parser.add_argument("--passes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        rate_bps=args.rate_bps,
        k_branches=args.k_branches,
        n_packets=args.packets,
        n_symbols=args.symbols,
        n_passes=args.passes,
        seed=args.seed,
    )
    emit("BENCH_dfe_table", render(payload))
    path = emit_json("BENCH_dfe", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
