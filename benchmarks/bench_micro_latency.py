"""§7.2.2 latency microbenchmark.

Paper (128-byte packets): preamble 50 ms, online training 80 ms, packet
transmission 258 ms @ 8 Kbps / 386 ms @ 4 Kbps, demodulation 90 ms with the
16-branch DFE — demodulation faster than the payload airtime, so reception
pipelines in real time.  Shape targets: section durations match the frame
format, and our DFE demodulates faster than the payload airtime on this
machine too.
"""

from _common import emit, format_table

from repro.experiments.micro import latency_report

PAPER = {
    4000: {"payload_s": 0.386 - 0.130, "total_s": 0.503},
    8000: {"payload_s": 0.258 - 0.130, "total_s": 0.375},
}


def test_micro_latency(benchmark):
    rows_data = latency_report(rates_bps=[4000, 8000], payload_bytes=128, rng=51)
    rows = []
    for r in rows_data:
        rows.append(
            (
                f"{r.rate_bps / 1000:g}k",
                f"{r.preamble_s * 1e3:.0f} ms",
                f"{r.training_s * 1e3:.0f} ms",
                f"{r.payload_s * 1e3:.0f} ms",
                f"{r.demod_s * 1e3:.0f} ms",
                "yes" if r.realtime_capable else "NO",
            )
        )
    emit(
        "micro_latency",
        format_table(
            ["rate", "preamble", "training", "payload", "demod (wall)", "real-time"],
            rows,
            title="Latency microbenchmark (paper: 50/80 ms overheads, pipelined RX)",
        ),
    )
    by_rate = {r.rate_bps: r for r in rows_data}
    assert abs(by_rate[8000].preamble_s - 50e-3) < 5e-3
    assert abs(by_rate[8000].training_s - 80e-3) < 20e-3
    # 128 bytes + CRC at 8 Kbps: ~130 ms of payload airtime.
    assert abs(by_rate[8000].payload_s - 0.130) < 0.01
    assert by_rate[4000].payload_s > by_rate[8000].payload_s

    from repro.experiments.fig18 import emulated_packet_ber
    from repro.modem.config import preset_for_rate

    benchmark(emulated_packet_ber, preset_for_rate(8000), 40.0, 64, 16, 2)
