"""Fig 16c — BER versus yaw misalignment.

Paper: channel training keeps the link reliable to at least +-40deg of yaw;
preamble detection and training "will likely fail beyond +-55deg".  Shape
targets: reliable through 40deg, broken past ~60deg, and online training
visibly better than the untrained (nominal-reference) receiver at
moderate yaw.
"""

from _common import emit, format_table

from repro.experiments.fig16 import yaw_sweep


def test_fig16c_yaw(benchmark):
    trained = yaw_sweep(
        yaw_degs=[0, 20, 40, 50, 60, 70], distance_m=3.0, n_packets=4, rng=13
    )
    untrained = yaw_sweep(
        yaw_degs=[0, 20, 40], distance_m=3.0, n_packets=4, online_training=False, rng=13
    )
    rows = [
        (p.x, f"{p.ber:.4f}", f"{p.extras['detection_rate']:.2f}") for p in trained
    ]
    rows.append(("-", "-", "-"))
    for p in untrained:
        rows.append((f"{p.x} (no training)", f"{p.ber:.4f}", f"{p.extras['detection_rate']:.2f}"))
    emit(
        "fig16c_yaw",
        format_table(
            ["yaw deg", "BER", "detect rate"],
            rows,
            title="Fig 16c - BER vs yaw (paper: tolerate 40deg, fail past ~55deg)",
        ),
    )
    by_yaw = {p.x: p.ber for p in trained}
    assert by_yaw[40] < 0.02, "40deg yaw must stay near-reliable with training"
    assert by_yaw[70] > 0.05, "past the cliff the link must fail"
    untrained_by_yaw = {p.x: p.ber for p in untrained}
    assert untrained_by_yaw[40] >= by_yaw[40], "training must not hurt at 40deg"

    from repro.experiments.common import make_simulator

    sim = make_simulator(distance_m=3.0, yaw_deg=30.0, payload_bytes=16, rng=5)
    benchmark(sim.run_packet, rng=6)
