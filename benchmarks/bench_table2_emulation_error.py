"""Table 2 — LCM emulation error versus MLS fingerprint order V.

Paper (V : max / avg): 4: 59%/15%, 6: 31%/4.1%, 8: 21%/1.2%, 10: 13%/0.4%,
12: 7.3%/0.2%, 14: 3.2%/0.2%, 16: 0.7%/0.1%.  Shape target: both error
measures decay monotonically in V and are near-zero once V spans the LC
relaxation (V >= 8 slots of 0.5 ms).

The reference order here is 14 (vs the paper's 17) to keep the benchmark
minutes-scale; the trend is identical.

A second pass swaps the scalar Malus ground truth for the Jones
polarizer-stack engine (cold-white LED, cheap film both ends, a warm
cell) and bounds the fingerprint truncation error against physics the
paper's model cannot express — the emulation-error bound of the
fidelity ladder.  Both tables land in ``BENCH_table2.json``.
"""

from _common import emit, emit_json, format_table

from repro.analysis.emulation import emulation_error_study
from repro.lcm.dispersion import LCDispersionModel
from repro.optics.polarstack import PolarizerSpec, PolarStackConfig, SpectralConfig

PAPER = {4: (0.59, 0.15), 6: (0.31, 0.041), 8: (0.21, 0.012), 10: (0.13, 0.004), 12: (0.073, 0.002)}

#: The Jones ground truth: dispersive LED, leaky sheets, thermal drift.
JONES_STACK = PolarStackConfig(
    spectral=SpectralConfig.led_cold_white(),
    tag_polarizer=PolarizerSpec.cheap(),
    reader_polarizer=PolarizerSpec.cheap(),
    dispersion=LCDispersionModel(temperature_c=31.0),
)

STUDY = dict(
    orders=[4, 6, 8, 10, 12],
    reference_order=14,
    n_sequences=12,
    sequence_len=48,
)


def _table(report, title):
    rows = []
    for v, mx, avg in report.rows():
        p_max, p_avg = PAPER.get(v, (float("nan"), float("nan")))
        rows.append((v, f"{p_max:.1%}", f"{p_avg:.1%}", f"{mx:.1%}", f"{avg:.1%}"))
    return format_table(
        ["V", "paper max", "paper avg", "measured max", "measured avg"], rows, title=title
    )


def test_table2_emulation_error(benchmark):
    report = emulation_error_study(**STUDY, rng=1)
    jones = emulation_error_study(**STUDY, rng=1, stack=JONES_STACK)
    emit(
        "table2_emulation_error",
        _table(report, "Table 2 - emulation error vs MLS order (reference V=14)")
        + "\n\n"
        + _table(jones, "Jones-rung ground truth (LED + cheap film + 31 C)"),
    )
    emit_json(
        "BENCH_table2",
        {
            "reference_order": report.reference_order,
            "n_sequences": report.n_sequences,
            "malus": {
                "max_error": {str(v): report.max_error[v] for v in report.orders},
                "avg_error": {str(v): report.avg_error[v] for v in report.orders},
            },
            "jones": {
                "stack": "led_cold_white + cheap film x2 + 31C",
                "max_error": {str(v): jones.max_error[v] for v in jones.orders},
                "avg_error": {str(v): jones.avg_error[v] for v in jones.orders},
            },
        },
    )
    for rep in (report, jones):
        avgs = [rep.avg_error[v] for v in rep.orders]
        assert all(a >= b for a, b in zip(avgs, avgs[1:])), "error must decay with V"
    assert report.avg_error[12] < 0.01
    # the dispersive truth is harder to emulate but still converges by V=12
    assert jones.avg_error[12] < 0.02

    benchmark(
        emulation_error_study,
        orders=[4],
        reference_order=8,
        n_sequences=2,
        sequence_len=16,
        rng=1,
    )
