"""Table 2 — LCM emulation error versus MLS fingerprint order V.

Paper (V : max / avg): 4: 59%/15%, 6: 31%/4.1%, 8: 21%/1.2%, 10: 13%/0.4%,
12: 7.3%/0.2%, 14: 3.2%/0.2%, 16: 0.7%/0.1%.  Shape target: both error
measures decay monotonically in V and are near-zero once V spans the LC
relaxation (V >= 8 slots of 0.5 ms).

The reference order here is 14 (vs the paper's 17) to keep the benchmark
minutes-scale; the trend is identical.
"""

from _common import emit, format_table

from repro.analysis.emulation import emulation_error_study

PAPER = {4: (0.59, 0.15), 6: (0.31, 0.041), 8: (0.21, 0.012), 10: (0.13, 0.004), 12: (0.073, 0.002)}


def test_table2_emulation_error(benchmark):
    report = emulation_error_study(
        orders=[4, 6, 8, 10, 12],
        reference_order=14,
        n_sequences=12,
        sequence_len=48,
        rng=1,
    )
    rows = []
    for v, mx, avg in report.rows():
        p_max, p_avg = PAPER.get(v, (float("nan"), float("nan")))
        rows.append((v, f"{p_max:.1%}", f"{p_avg:.1%}", f"{mx:.1%}", f"{avg:.1%}"))
    emit(
        "table2_emulation_error",
        format_table(
            ["V", "paper max", "paper avg", "measured max", "measured avg"],
            rows,
            title="Table 2 - emulation error vs MLS order (reference V=14)",
        ),
    )
    avgs = [report.avg_error[v] for v in report.orders]
    assert all(a >= b for a, b in zip(avgs, avgs[1:])), "error must decay with V"
    assert report.avg_error[12] < 0.01

    benchmark(
        emulation_error_study,
        orders=[4],
        reference_order=8,
        n_sequences=2,
        sequence_len=16,
        rng=1,
    )
