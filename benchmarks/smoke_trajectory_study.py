"""Nightly trajectory-study smoke: shards, merge, and the golden gate.

The scenario-catalog analogue of ``smoke_sweep_resume.py``, run against
the *real* physics task (every catalog trajectory, three packets per
cell — the exact grid the golden journal freezes):

1. run the ``trajectory_study`` grid as two shards into separate
   journals, killing shard ``0/2`` mid-journal and resuming it;
2. merge the shard journals;
3. demand the merged canonical records are **bit-identical** to an
   uninterrupted unsharded run;
4. demand both match the frozen golden journal
   ``tests/golden/cases/sweep_trajectory.jsonl`` — the cross-release
   identity gate: if a physics or spec change moves a row, this trips
   before the golden wall does in a context with the journals in hand.

Artifacts (all journals plus a JSON verdict) land under
``benchmarks/results/trajectory_smoke/`` and are uploaded by the nightly
CI lane.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_trajectory_study.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.sweeps import (
    SimulatedCrash,
    canonical_records,
    merge_journals,
)
from repro.experiments.trajectory_study import trajectory_study_grid

SMOKE_DIR = Path(__file__).parent / "results" / "trajectory_smoke"
GOLDEN = Path(__file__).parent.parent / "tests" / "golden" / "cases" / "sweep_trajectory.jsonl"
# The frozen grid: full catalog, n_packets=[3], root_seed=51.
GRID = dict(n_packets_list=[3], root_seed=51)
CRASH_AFTER = 2  # journal appends before the injected kill (1 header + 1 task)


def main() -> int:
    SMOKE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in SMOKE_DIR.glob("*.jsonl"):
        stale.unlink()

    single = SMOKE_DIR / "single.jsonl"
    trajectory_study_grid(**GRID, journal=single)

    shard0 = SMOKE_DIR / "shard0.jsonl"
    crashed = False
    try:
        trajectory_study_grid(
            **GRID, journal=shard0, shard="0/2", sweep={"crash_after": CRASH_AFTER}
        )
    except SimulatedCrash:
        crashed = True
    trajectory_study_grid(**GRID, journal=shard0, shard="0/2")

    shard1 = SMOKE_DIR / "shard1.jsonl"
    trajectory_study_grid(**GRID, journal=shard1, shard="1/2")

    merged = SMOKE_DIR / "merged.jsonl"
    merge_journals([shard0, shard1], merged)

    merged_records = canonical_records(merged)
    checks = {
        "crash_injected": crashed,
        "merged_matches_unsharded": merged_records == canonical_records(single),
        "matches_golden_journal": merged_records == canonical_records(GOLDEN),
    }
    verdict = {
        "grid": {k: v for k, v in GRID.items()},
        "golden": str(GOLDEN),
        "checks": checks,
        "ok": all(checks.values()),
    }
    (SMOKE_DIR / "verdict.json").write_text(json.dumps(verdict, indent=2) + "\n")
    for name, ok in checks.items():
        print(f"{'PASS' if ok else 'FAIL'}  {name}")
    if not verdict["ok"]:
        print(f"trajectory smoke FAILED; journals kept under {SMOKE_DIR}", file=sys.stderr)
        return 1
    print(f"trajectory-study smoke OK (2 shards + golden gate); artifacts in {SMOKE_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
