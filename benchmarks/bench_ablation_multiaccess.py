"""Extension — concurrent multi-tag uplink (paper §8 "Efficient Multiple
Access").

A multi-aperture reader (directive photodiode units) sounds each tag,
zero-forces the mixture, and demodulates *simultaneous* DSM-PQAM
transmissions.  Expected shape: with enough apertures and SNR, every
concurrent tag decodes cleanly — aggregate throughput scales with the tag
count instead of TDMA's 1x — and the channel estimate lands within a few
percent of truth.
"""

from _common import emit, format_table

from repro.experiments.multiaccess import concurrent_uplink_study


def test_ablation_multiaccess(benchmark):
    cases = [
        (1, 2, 45.0),
        (2, 2, 45.0),
        (2, 3, 45.0),
        (3, 4, 50.0),
        (4, 6, 50.0),
    ]
    rows = []
    results = {}
    for tags, apertures, snr in cases:
        r = concurrent_uplink_study(
            n_tags=tags, n_apertures=apertures, snr_db=snr, n_symbols=64, rng=71
        )
        results[(tags, apertures)] = r
        rows.append(
            (
                tags,
                apertures,
                f"{snr:.0f} dB",
                f"{max(r.per_tag_ber):.4f}",
                f"{r.channel_error:.3f}",
                f"{r.condition_number:.1f}",
                f"{r.aggregate_rate_multiple:.0f}x",
            )
        )
    emit(
        "ablation_multiaccess",
        format_table(
            ["tags", "apertures", "SNR", "worst BER", "H error", "cond(H)", "aggregate"],
            rows,
            title="Extension - concurrent tags via multi-aperture MIMO (paper §8)",
        ),
    )
    assert results[(2, 3)].aggregate_rate_multiple == 2.0
    assert results[(4, 6)].aggregate_rate_multiple == 4.0
    assert all(r.channel_error < 0.05 for r in results.values())

    benchmark(
        concurrent_uplink_study, 2, 3, 45.0, 32,
    )
