"""Fig 17a — decision-feedback equalizer versus the optimal detector.

Paper: the naive single-branch DFE loses ~0.7 m (~10%) of working range;
the 16-branch DFE is "nearly close to the optimal" Viterbi at 16x the
compute of the single branch.  Exact Viterbi is intractable at the default
(P=16, L=8) point — the paper says so too — so, as documented in
EXPERIMENTS.md, the comparison runs at a reduced configuration where the
full trellis fits (P=4, L=4, V=1 -> 64 states).

Shape targets: total errors dfe_1 >= dfe_16 >= viterbi, with dfe_16 close
to viterbi and dfe_1 measurably worse.
"""

from _common import emit, format_table

from repro.experiments.fig17 import dfe_comparison


def test_fig17a_dfe_branches(benchmark):
    out = dfe_comparison(
        distances_m=[10.0, 12.0, 13.0, 14.0, 15.0],
        n_packets=4,
        rng=21,
    )
    distances = [p.x for p in out["dfe_1"]]
    rows = []
    for i, d in enumerate(distances):
        rows.append(
            (
                d,
                f"{out['dfe_1'][i].ber:.4f}",
                f"{out['dfe_16'][i].ber:.4f}",
                f"{out['viterbi'][i].ber:.4f}",
            )
        )
    emit(
        "fig17a_dfe",
        format_table(
            ["distance m", "DFE K=1", "DFE K=16", "Viterbi"],
            rows,
            title="Fig 17a - DFE branches vs optimal (reduced config P=4, L=4)",
        ),
    )
    total = {k: sum(p.ber for p in pts) for k, pts in out.items()}
    assert total["dfe_16"] <= total["dfe_1"] + 1e-9
    assert total["viterbi"] <= total["dfe_1"] + 1e-9
    assert total["viterbi"] <= total["dfe_16"] + 0.02, "16 branches ~ optimal"

    from repro.experiments.common import make_simulator
    from repro.experiments.fig17 import VITERBI_CONFIG

    sim = make_simulator(config=VITERBI_CONFIG, distance_m=10.0, payload_bytes=16, rng=11)
    benchmark(sim.run_packet, rng=12)
