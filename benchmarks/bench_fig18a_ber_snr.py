"""Fig 18a — trace-driven BER versus SNR per modulation order.

Paper: higher-order modulation needs more SNR; 32 Kbps decodes "under a
55 dB SNR restriction"; 1 Kbps-class settings work ~20 dB below the 4 Kbps
point.  Shape targets: monotone waterfalls, 1%-BER thresholds strictly
ordered in rate, 8 Kbps threshold in the low-to-mid 20s dB, and 32 Kbps
demanding the most (decodable only at high SNR).
"""

import numpy as np
from _common import emit, format_table

from repro.experiments.fig18 import emulated_ber_vs_snr, waterfall_threshold

PAPER_NOTES = {
    2000: "low-order reference",
    8000: "prototype default",
    16000: "tag hardware limit",
    32000: "paper: needs ~55 dB",
}


def test_fig18a_ber_vs_snr(benchmark):
    snrs = [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]
    out = emulated_ber_vs_snr(
        rates_bps=[2000, 8000, 16000, 32000],
        snrs_db=snrs,
        n_symbols=160,
        n_packets=2,
        rng=31,
    )
    rows = []
    for rate, points in out.items():
        for p in points:
            if p.ber > 0 or p.x in (max(snrs), min(snrs)):
                rows.append((f"{rate / 1000:g}k", p.x, f"{p.ber:.4f}"))
    thresholds = {rate: waterfall_threshold(points) for rate, points in out.items()}
    rows.append(("-", "-", "-"))
    for rate, th in thresholds.items():
        rows.append((f"{rate / 1000:g}k threshold", f"{th:g} dB", PAPER_NOTES[rate]))
    emit(
        "fig18a_ber_snr",
        format_table(
            ["rate", "SNR dB", "BER"],
            rows,
            title="Fig 18a - BER vs SNR per modulation order (trace-driven)",
        ),
    )
    for points in out.values():
        bers = [p.ber for p in points]
        # allow small non-monotonic wiggle from finite packets
        assert bers[0] >= bers[-1]
    assert thresholds[2000] < thresholds[8000] < thresholds[16000] <= thresholds[32000]
    assert np.isfinite(thresholds[32000]), "32 Kbps must decode at high SNR"
    assert thresholds[32000] >= 30.0, "32 Kbps must demand much more SNR"

    from repro.experiments.fig18 import emulated_packet_ber
    from repro.modem.config import preset_for_rate

    cfg = preset_for_rate(8000)
    benchmark(emulated_packet_ber, cfg, 25.0, 64, 16, 1)
