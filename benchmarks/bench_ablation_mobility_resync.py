"""Extension — mid-packet re-sync under channel drift (paper §8 proposal).

The paper's mobility discussion proposes "inserting multiple
synchronization frames based on the mobility level ... to perform dynamic
channel equalization".  This benchmark implements and evaluates it: BER
versus roll drift rate with the block-resync receiver against the static
head-of-packet estimate.  Expected shape: both clean when static, the
static estimate degrading first as drift grows, re-sync extending the
usable mobility range severalfold.
"""

from _common import emit, format_table

from repro.experiments.mobility import mobility_resync_sweep


def test_ablation_mobility_resync(benchmark):
    out = mobility_resync_sweep(
        roll_rates_deg_s=[0.0, 10.0, 20.0, 40.0],
        n_packets=3,
        rng=61,
    )
    rates = [p.x for p in out["resync"]]
    rows = []
    for i, rate in enumerate(rates):
        rows.append(
            (
                f"{rate:g} deg/s",
                f"{out['static_estimate'][i].ber:.4f}",
                f"{out['resync'][i].ber:.4f}",
            )
        )
    emit(
        "ablation_mobility_resync",
        format_table(
            ["roll drift", "static estimate BER", "re-sync BER"],
            rows,
            title="Extension - mid-packet re-sync vs channel drift (paper §8)",
        ),
    )
    static = {p.x: p.ber for p in out["static_estimate"]}
    resync = {p.x: p.ber for p in out["resync"]}
    assert static[0.0] < 0.01 and resync[0.0] < 0.01, "both clean when static"
    assert resync[20.0] < static[20.0], "re-sync must win under drift"
    total_static = sum(static.values())
    total_resync = sum(resync.values())
    assert total_resync < 0.6 * total_static, "re-sync must be a clear net win"

    from repro.channel.dynamics import ChannelDrift
    from repro.experiments.mobility import MobileLinkSimulator
    import numpy as np

    sim = MobileLinkSimulator(
        distance_m=3.0,
        drift=ChannelDrift(roll_rate_rad_s=float(np.deg2rad(15.0))),
        payload_bytes=24,
        rng=7,
    )
    benchmark(sim.run_packet, rng=3)
