"""TX-chain throughput: vectorized LC synthesis + operating-point cache.

The committed artifact ``benchmarks/results/BENCH_txchain.json`` records,
from the *same run over the same frame drives*:

* **Synthesis**: one paper-like frame drive pushed through the frozen
  per-tick reference integrator (:class:`ReferenceLCResponseModel`, the
  executable spec) versus the vectorized two-pass engine
  (:class:`LCResponseModel`) — equivalence asserted in-run to 1e-12
  before any timing.
* **Packet rate**: end-to-end ``PacketSimulator`` packets/second with the
  operating-point artifact cache off versus on, with BER bit-identity of
  the two modes asserted in the same run.

Protocol mirrors ``bench_dfe_speed.py``: sustained passes over the whole
workload, median of ``n_passes`` after a shared warm-up, correctness
asserted on the exact arrays being timed.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_txchain_speed.py            # full artifact
    PYTHONPATH=src python -m pytest benchmarks/bench_txchain_speed.py  # slow-lane smoke
"""

from __future__ import annotations

import argparse
import platform
import statistics
import time

import numpy as np
import pytest

from _common import emit, emit_json, format_table

from repro.channel.link import OpticalLink
from repro.lcm.response import LCParams, LCResponseModel
from repro.lcm.response_reference import ReferenceLCResponseModel
from repro.modem.config import ModemConfig
from repro.optics.geometry import LinkGeometry
from repro.phy.frame import FrameFormat
from repro.phy.pipeline import PacketSimulator
from repro.phy.transmitter import PhyTransmitter
from repro.utils.opcache import OpCache

EQUIV_TOL = 1e-12


def build_frame_drive(config: ModemConfig, payload_bytes: int, seed: int):
    """A deterministic full-frame per-pixel drive at the paper's default point."""
    from repro.lcm.array import LCMArray
    from repro.modem.dsm_pqam import DsmPqamModulator

    array = LCMArray.build(
        groups_per_channel=config.dsm_order,
        levels_per_group=config.levels_per_axis,
    )
    frame = FrameFormat(config, payload_bytes=payload_bytes)
    modulator = DsmPqamModulator(config, array)
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=payload_bytes, dtype=np.uint8).tobytes()
    levels_i, levels_q = frame.frame_levels(payload)
    drive = modulator.drive_for_levels(levels_i, levels_q)
    return drive, frame


def _timed_passes(fn, n_passes: int) -> tuple[float, list[float]]:
    """Median seconds per call over ``n_passes`` calls."""
    times = []
    for _ in range(n_passes):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), times


def bench_synthesis(config: ModemConfig, payload_bytes: int, n_passes: int, seed: int) -> dict:
    """Frame-drive synthesis: vectorized engine vs the frozen reference."""
    drive, frame = build_frame_drive(config, payload_bytes, seed)
    params = LCParams()
    vec = LCResponseModel(params)
    ref = ReferenceLCResponseModel(params)
    rng = np.random.default_rng(seed + 1)
    scale = 0.9 + 0.2 * rng.random(drive.shape[0])

    # Equivalence gate first — a speedup over different answers is noise.
    got = vec.simulate(drive, config.slot_s, config.fs, time_scale=scale)
    want = ref.simulate(drive, config.slot_s, config.fs, time_scale=scale)
    err = float(np.max(np.abs(got - want))) if got.size else 0.0
    assert err <= EQUIV_TOL, f"vectorized engine diverged from reference: {err}"

    ref_s, ref_raw = _timed_passes(
        lambda: ref.simulate(drive, config.slot_s, config.fs, time_scale=scale), n_passes
    )
    vec_s, vec_raw = _timed_passes(
        lambda: vec.simulate(drive, config.slot_s, config.fs, time_scale=scale), n_passes
    )
    return {
        "n_pixels": int(drive.shape[0]),
        "n_slots": int(drive.shape[1]),
        "frame_samples": int(frame.total_slots * config.samples_per_slot),
        "max_abs_error": err,
        "reference_ms_per_frame": round(ref_s * 1e3, 3),
        "vectorized_ms_per_frame": round(vec_s * 1e3, 3),
        "speedup": round(ref_s / vec_s, 2),
        "passes_ms": {
            "reference": [round(t * 1e3, 3) for t in ref_raw],
            "vectorized": [round(t * 1e3, 3) for t in vec_raw],
        },
    }


def bench_packet_rate(payload_bytes: int, n_packets: int, n_passes: int, seed: int) -> dict:
    """End-to-end packets/s with the operating-point cache off vs on."""
    def make(opcache):
        return PacketSimulator(
            link=OpticalLink(geometry=LinkGeometry(distance_m=2.0)),
            payload_bytes=payload_bytes,
            bank_mode="trained",
            rng=seed,
            opcache=opcache,
        )

    # BER bit-identity gate: cache on and off must agree exactly.
    base = make(False).measure_ber(n_packets=n_packets, rng=seed + 1)
    cache = OpCache()
    make(cache).measure_ber(n_packets=n_packets, rng=seed + 1)  # warm the cache
    cached = make(cache).measure_ber(n_packets=n_packets, rng=seed + 1)
    assert base.ber == cached.ber and base.n_bit_errors == cached.n_bit_errors, (
        f"opcache changed results: {base.ber} vs {cached.ber}"
    )

    off_s, off_raw = _timed_passes(
        lambda: make(False).measure_ber(n_packets=n_packets, rng=seed + 1), n_passes
    )
    on_s, on_raw = _timed_passes(
        lambda: make(cache).measure_ber(n_packets=n_packets, rng=seed + 1), n_passes
    )
    return {
        "n_packets": int(n_packets),
        "ber": float(base.ber),
        "bit_identical": True,
        "cache_off_pkt_per_s": round(n_packets / off_s, 2),
        "cache_on_pkt_per_s": round(n_packets / on_s, 2),
        "speedup": round(off_s / on_s, 2),
        "passes_s": {
            "cache_off": [round(t, 3) for t in off_raw],
            "cache_on": [round(t, 3) for t in on_raw],
        },
    }


def run_benchmark(
    payload_bytes: int = 128,
    n_packets: int = 6,
    n_passes: int = 5,
    seed: int = 7,
) -> dict:
    config = ModemConfig()
    synthesis = bench_synthesis(config, payload_bytes, n_passes, seed)
    packet = bench_packet_rate(32, n_packets, max(2, n_passes - 2), seed)
    return {
        "benchmark": "txchain_synthesis_and_opcache",
        "operating_point": {
            "rate_bps": float(config.rate_bps),
            "payload_bytes": int(payload_bytes),
            "seed": int(seed),
        },
        "protocol": {
            "kind": "sustained full-frame synthesis, median of passes",
            "n_passes": int(n_passes),
            "equivalence_tol": EQUIV_TOL,
            "equivalence_checked": True,
            "ber_bit_identity_checked": True,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "processor": platform.machine(),
        },
        "synthesis": synthesis,
        "packet_rate": packet,
    }


def render(payload: dict) -> str:
    syn = payload["synthesis"]
    pkt = payload["packet_rate"]
    rows = [
        ("LC synthesis, reference (ms/frame)", syn["reference_ms_per_frame"], 1.0),
        ("LC synthesis, vectorized (ms/frame)", syn["vectorized_ms_per_frame"], syn["speedup"]),
        ("packet rate, cache off (pkt/s)", pkt["cache_off_pkt_per_s"], 1.0),
        ("packet rate, cache on (pkt/s)", pkt["cache_on_pkt_per_s"], pkt["speedup"]),
    ]
    return format_table(
        ["stage", "value", "speedup"],
        rows,
        title=(
            f"TX chain - {syn['n_pixels']} pixels, {syn['n_slots']} slots "
            f"({syn['frame_samples']} samples/frame), equivalence <= "
            f"{payload['protocol']['equivalence_tol']:g}"
        ),
    )


@pytest.mark.slow
def test_bench_txchain_speed():
    """Slow-lane smoke: regenerate BENCH_txchain.json and gate the ratio.

    The floor is deliberately below the committed ~4-5x synthesis figure:
    shared CI runners have wild run-to-run variance, and the committed
    artifact (generated on a quiet machine) is the recorded claim.
    """
    payload = run_benchmark(n_passes=3)
    emit("BENCH_txchain_table", render(payload))
    path = emit_json("BENCH_txchain", payload)
    assert path.exists()
    assert payload["synthesis"]["max_abs_error"] <= EQUIV_TOL
    assert payload["synthesis"]["speedup"] >= 2.0
    assert payload["packet_rate"]["bit_identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--payload-bytes", type=int, default=128)
    parser.add_argument("--packets", type=int, default=6)
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the synthesis speedup lands below this",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(
        payload_bytes=args.payload_bytes,
        n_packets=args.packets,
        n_passes=args.passes,
        seed=args.seed,
    )
    emit("BENCH_txchain_table", render(payload))
    path = emit_json("BENCH_txchain", payload)
    print(f"wrote {path}")
    if payload["synthesis"]["speedup"] < args.min_speedup:
        print(
            f"FAIL: synthesis speedup {payload['synthesis']['speedup']}x "
            f"below required {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
