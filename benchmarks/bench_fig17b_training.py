"""Fig 17b — channel-training tail memory V.

Paper: V=1 "has inferior performance even with sufficient SNR" (the tail
effect is left unmodelled, a system error floor); the default V=2 loses
almost nothing against V=3 while halving offline training time.  Shape
targets: total error V=1 > V=2, and V=3 within a whisker of V=2.
"""

from _common import emit, format_table

from repro.experiments.fig17 import training_memory_sweep


def test_fig17b_training_memory(benchmark):
    out = training_memory_sweep(
        memories=[1, 2, 3],
        distances_m=[4.0, 6.0, 7.0],
        n_packets=4,
        rng=22,
    )
    distances = [p.x for p in out[1]]
    rows = []
    for i, d in enumerate(distances):
        rows.append((d, f"{out[1][i].ber:.4f}", f"{out[2][i].ber:.4f}", f"{out[3][i].ber:.4f}"))
    emit(
        "fig17b_training",
        format_table(
            ["distance m", "V=1", "V=2", "V=3"],
            rows,
            title="Fig 17b - BER vs training memory (paper: V=1 floored, V=2 ~ V=3)",
        ),
    )
    total = {v: sum(p.ber for p in pts) for v, pts in out.items()}
    assert total[1] > total[2], "V=1 must show the tail-effect system error"
    assert total[3] <= total[2] + 0.01, "V=3 adds little over V=2"

    from dataclasses import replace

    from repro.experiments.common import make_simulator
    from repro.modem.config import ModemConfig

    sim = make_simulator(config=replace(ModemConfig(), tail_memory=1), distance_m=5.0, payload_bytes=16, rng=13)
    benchmark(sim.run_packet, rng=14)
