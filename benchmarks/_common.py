"""Shared benchmark plumbing: result emission and table rendering.

Every benchmark prints a paper-versus-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the comparison survives pytest's
output capture.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.batch import BatchRunner, GridTask
from repro.experiments.common import format_table

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["BatchRunner", "GridTask", "emit", "emit_json", "format_table"]


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark artifact under benchmarks/results/.

    Used for committed performance records (e.g. ``BENCH_dfe.json``) where a
    rendered table is not enough: the artifact carries both the recorded
    baseline and the fresh measurement so regressions are diffable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
