"""Shared benchmark plumbing: result emission and table rendering.

Every benchmark prints a paper-versus-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the comparison survives pytest's
output capture.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import format_table

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "format_table"]


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
