"""Nightly polarization-fidelity smoke: shards, merge, and the golden gate.

The fidelity-ladder analogue of ``smoke_trajectory_study.py``, run against
the real divergence task (all four rungs at two extinction grades — the
exact grid the golden journal freezes):

1. run the ``polarization_fidelity`` grid as two shards into separate
   journals, killing shard ``0/2`` mid-journal and resuming it;
2. merge the shard journals;
3. demand the merged canonical records are **bit-identical** to an
   uninterrupted unsharded run;
4. demand both match the frozen golden journal
   ``tests/golden/cases/sweep_polarization.jsonl`` — the cross-release
   identity gate for the spectral kernels.

Artifacts (all journals plus a JSON verdict) land under
``benchmarks/results/polarization_smoke/`` and are uploaded by the
nightly CI lane.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_polarization.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.polarization_fidelity import polarization_fidelity_grid
from repro.experiments.sweeps import (
    SimulatedCrash,
    canonical_records,
    merge_journals,
)

SMOKE_DIR = Path(__file__).parent / "results" / "polarization_smoke"
GOLDEN = Path(__file__).parent.parent / "tests" / "golden" / "cases" / "sweep_polarization.jsonl"
# The frozen grid: all four rungs, extinctions [20, 30] dB, root_seed=61.
GRID = dict(extinctions_db=[20.0, 30.0], root_seed=61)
CRASH_AFTER = 2  # journal appends before the injected kill (1 header + 1 task)


def main() -> int:
    SMOKE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in SMOKE_DIR.glob("*.jsonl"):
        stale.unlink()

    single = SMOKE_DIR / "single.jsonl"
    polarization_fidelity_grid(**GRID, journal=single)

    shard0 = SMOKE_DIR / "shard0.jsonl"
    crashed = False
    try:
        polarization_fidelity_grid(
            **GRID, journal=shard0, shard="0/2", sweep={"crash_after": CRASH_AFTER}
        )
    except SimulatedCrash:
        crashed = True
    polarization_fidelity_grid(**GRID, journal=shard0, shard="0/2")

    shard1 = SMOKE_DIR / "shard1.jsonl"
    polarization_fidelity_grid(**GRID, journal=shard1, shard="1/2")

    merged = SMOKE_DIR / "merged.jsonl"
    merge_journals([shard0, shard1], merged)

    merged_records = canonical_records(merged)
    checks = {
        "crash_injected": crashed,
        "merged_matches_unsharded": merged_records == canonical_records(single),
        "matches_golden_journal": merged_records == canonical_records(GOLDEN),
    }
    verdict = {
        "grid": {k: v for k, v in GRID.items()},
        "golden": str(GOLDEN),
        "checks": checks,
        "ok": all(checks.values()),
    }
    (SMOKE_DIR / "verdict.json").write_text(json.dumps(verdict, indent=2) + "\n")
    for name, ok in checks.items():
        print(f"{'PASS' if ok else 'FAIL'}  {name}")
    if not verdict["ok"]:
        print(f"polarization smoke FAILED; journals kept under {SMOKE_DIR}", file=sys.stderr)
        return 1
    print(f"polarization-fidelity smoke OK (2 shards + golden gate); artifacts in {SMOKE_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
