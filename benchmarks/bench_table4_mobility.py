"""Table 4 — BER with ambient human mobility.

Paper BERs: no human 0.25%, walk 10 cm off LoS 0.25%, walk behind tag
0.11%, work 5 cm off LoS 0.29%, three people walking 0.17% — all below
0.3%.  Shape target: every case reliable and within a small factor of the
static baseline (retroreflectivity makes mobility nearly free).
"""

from _common import emit, format_table

from repro.experiments.table4 import mobility_study

PAPER = {
    "no_human": 0.0025,
    "walk_10cm_off_los": 0.0025,
    "walk_behind_tag": 0.0011,
    "work_5cm_off_los": 0.0029,
    "three_walk_around_los": 0.0017,
}


def test_table4_mobility(benchmark):
    out = mobility_study(distance_m=4.5, n_packets=8, rng=41)
    rows = [
        (name, f"{PAPER[name]:.2%}", f"{p.ber:.2%}") for name, p in out.items()
    ]
    emit(
        "table4_mobility",
        format_table(
            ["case", "paper BER", "measured BER"],
            rows,
            title="Table 4 - BER with ambient human mobility (paper: all < 0.3%)",
        ),
    )
    assert all(p.ber < 0.01 for p in out.values()), "every mobility case reliable"

    from repro.experiments.common import make_simulator
    from repro.optics.ambient import MOBILITY_CASES

    sim = make_simulator(
        distance_m=5.0, mobility=MOBILITY_CASES["three_walk_around_los"], payload_bytes=16, rng=9
    )
    benchmark(sim.run_packet, rng=10)
