"""Nightly chaos-soak smoke for the multi-reader fleet layer.

The drill is the issue's acceptance scenario, run as an operational gate:

1. sweep a seeded ``network_scale`` grid (baseline + every named chaos
   scenario, including the reader-crash plan that kills 1 of N readers
   mid-run) through the crash-safe journal engine with metrics on;
2. demand **full tag recovery** — zero orphaned tags and zero contract
   violations in every cell;
3. demand **bounded degradation** — each chaos cell keeps at least
   ``MIN_GOODPUT_RATIO`` of its baseline cell's goodput (no upper cap:
   a chaos run is a different sample path, so mild upside is noise);
4. demand **determinism** — a second serial pass over the same grid is
   row-for-row bit-identical (timeline digests included).

Exit status is non-zero on any violation.  Artifacts (the sweep journal,
the metrics RunReport, and a JSON verdict) land under
``benchmarks/results/network_chaos/`` and are uploaded by the nightly CI
lane, so a failure ships the exact journal that disagreed.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_network_chaos.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.network_scale import network_scale_grid
from repro.faults.network import network_scenario_names

SMOKE_DIR = Path(__file__).parent / "results" / "network_chaos"
ROOT_SEED = 43
N_TAGS = [6, 12]
DURATION_S = 20.0
#: Chaos may cost goodput, but never more than this fraction of baseline.
MIN_GOODPUT_RATIO = 0.35


def run_grid(journal: Path | None, metrics_out: Path | None = None):
    return network_scale_grid(
        scenarios=["none", *network_scenario_names()],
        n_tags_list=N_TAGS,
        duration_s=DURATION_S,
        root_seed=ROOT_SEED,
        journal=journal,
        metrics_out=metrics_out,
    )


def main() -> int:
    SMOKE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in SMOKE_DIR.glob("*.jsonl"):
        stale.unlink()

    journal = SMOKE_DIR / "chaos.jsonl"
    out = run_grid(journal, metrics_out=SMOKE_DIR / "metrics.json")
    replay = run_grid(None)

    orphan_cells = [
        (name, row["x"])
        for name, rows in out.items()
        for row in rows
        if row["orphaned_tags"] or row["contract_violation"]
    ]
    baseline = {row["x"]: row["goodput_bps"] for row in out["none"]}
    ratio_cells = []
    for name, rows in out.items():
        if name == "none":
            continue
        for row in rows:
            ratio = row["goodput_bps"] / baseline[row["x"]]
            if ratio <= MIN_GOODPUT_RATIO:
                ratio_cells.append((name, row["x"], round(ratio, 3)))

    checks = {
        "full_tag_recovery": not orphan_cells,
        "bounded_degradation": not ratio_cells,
        "deterministic_replay": out == replay,
    }
    verdict = {
        "checks": checks,
        "orphan_cells": orphan_cells,
        "ratio_violations": ratio_cells,
        "goodput_bps": {
            name: {str(r["x"]): round(r["goodput_bps"], 1) for r in rows}
            for name, rows in out.items()
        },
    }
    (SMOKE_DIR / "verdict.json").write_text(json.dumps(verdict, indent=2) + "\n")

    for name, ok in checks.items():
        print(f"{'PASS' if ok else 'FAIL'}  {name}")
    if not all(checks.values()):
        print(json.dumps(verdict, indent=2))
        return 1
    print(f"chaos soak clean: {sum(len(r) for r in out.values())} cells, "
          f"journal at {journal}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
