"""Fig 18c — rate-adaptive MAC throughput gain versus tag count.

Paper: tags uniform in [1 m, 4.3 m] (65 dB .. 14 dB), 100 runs; the
adaptive assignment beats the everyone-runs-the-weakest-rate baseline by
~1.2x at 4 tags growing to ~3.7x at 100 tags.  Shape targets: gain == 1 at
a single tag, monotone growth, and a multi-x plateau at 100 tags.
"""

from _common import emit, format_table

from repro.experiments.fig18 import rate_adaptation_gain
from repro.mac.network import NetworkSimulator

PAPER = {4: 1.2, 100: 3.7}


def test_fig18c_rate_adaptation(benchmark):
    counts = [1, 2, 4, 10, 30, 100]
    gains = rate_adaptation_gain(tag_counts=counts, n_runs=60, rng=33)
    rows = [
        (n, f"{gains[n]:.2f}x", f"{PAPER[n]:.1f}x" if n in PAPER else "-")
        for n in counts
    ]
    emit(
        "fig18c_rate_adapt",
        format_table(
            ["tags", "measured gain", "paper gain"],
            rows,
            title="Fig 18c - rate-adaptation gain vs tag count (100-run mean)",
        ),
    )
    assert gains[1] == 1.0
    assert gains[1] < gains[4] < gains[100]
    assert 2.0 < gains[100] < 6.0, "100-tag gain should sit in the paper's multi-x regime"

    sim = NetworkSimulator()
    benchmark(sim.run, 20, 5)
