"""Fig 13 — relative demodulation threshold across the (L, P) plane.

The paper's point: at a fixed rate, neither pure-DSM (max L, min P) nor
pure-PQAM (min L, max P) is optimal — a proper combination minimises the
threshold.  We sweep every feasible operating point at 4 and 8 Kbps and
report thresholds relative to the per-rate best.
"""

from _common import emit, format_table

from repro.analysis.distance import relative_threshold_db
from repro.analysis.optimizer import threshold_map


def test_fig13_threshold_map(benchmark):
    rows = []
    winners = {}
    for rate in (4000, 8000):
        points = threshold_map(rate, n_contexts=3, rng=13)
        best = max(p.distance for p in points)
        for p in sorted(points, key=lambda q: q.config.dsm_order):
            rel = relative_threshold_db(best, p.distance)
            rows.append(
                (
                    f"{rate / 1000:g}k",
                    p.config.dsm_order,
                    p.config.pqam_order,
                    f"{p.config.slot_s * 1e3:g} ms",
                    f"{p.distance:.3g}",
                    f"+{rel:.1f} dB",
                )
            )
        winners[rate] = max(points, key=lambda q: q.distance).config
    emit(
        "fig13_threshold_map",
        format_table(
            ["rate", "L", "P", "T", "D", "rel threshold"],
            rows,
            title="Fig 13 - threshold vs DSM/PQAM order (relative to per-rate best)",
        ),
    )
    # The winner at 4 Kbps must be an interior combination, not an extreme.
    orders = [c.dsm_order for c in map(lambda p: p.config, threshold_map(4000, n_contexts=2, rng=13))]
    w = winners[4000]
    assert min(orders) < w.dsm_order < max(orders) or len(orders) < 3

    benchmark(threshold_map, 4000, n_contexts=1, rng=13)
