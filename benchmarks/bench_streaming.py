"""Streaming receiver throughput versus the one-shot batch receiver.

The committed artifact ``benchmarks/results/BENCH_streaming.json`` records,
from the *same run over the same capture grid*, the batch receiver's
sustained packet rate and the streaming receiver's rate at several chunk
sizes.  The streaming path exists for incremental ingest, not speed — but it
must not tax the pipeline either: the gate is that streaming at the default
chunk size sustains at least **0.9x** of batch throughput.

Protocol (mirrors ``bench_dfe_speed.py``):

* **Sustained workload**: one pass decodes every capture in the grid;
  throughput is packets over wall-clock for the pass.
* **Median of passes** after a shared warm-up.
* **Bit-exactness is asserted in the same run** — every streamed record must
  equal the batch record field-for-field before any timing is trusted.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_streaming.py            # full artifact
    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py  # slow-lane smoke
"""

from __future__ import annotations

import argparse
import platform
import statistics
import time

import numpy as np
import pytest

from _common import emit, emit_json, format_table

from repro.modem.config import ModemConfig
from repro.phy.pipeline import PacketSimulator
from repro.phy.streaming import StreamingReceiver

#: Chunk sizes measured per pass; the first is the gated default.
CHUNK_SIZES = (256, 1024, 4096)

#: Throughput floor for the gated (default) chunk size, vs batch.
MIN_RELATIVE_THROUGHPUT = 0.9


def build_grid(n_packets: int, seed: int):
    """Deterministic captures from one trained simulator."""
    config = ModemConfig(dsm_order=2, pqam_order=4, slot_s=2.0e-3, fs=10e3, tail_memory=2)
    sim = PacketSimulator(config=config, payload_bytes=6, rng=seed)
    gen = np.random.default_rng(seed + 1)
    captures = [sim.make_capture(rng=gen) for _ in range(n_packets)]
    return sim, captures


def batch_pass(sim, captures):
    return [
        sim.receiver.receive(cap.samples, search_stop=cap.search_stop)
        for cap in captures
    ]


def streaming_pass(sim, captures, chunk: int):
    outs = []
    for cap in captures:
        rx = StreamingReceiver(sim.receiver, search_stop=cap.search_stop)
        for lo in range(0, cap.samples.size, chunk):
            outs.extend(rx.push(cap.samples[lo : lo + chunk]))
        outs.extend(rx.close())
    return outs


def assert_bit_identical(batch_outs, stream_outs, chunk: int) -> None:
    assert len(batch_outs) == len(stream_outs)
    for p, (b, s) in enumerate(zip(batch_outs, stream_outs)):
        tag = f"chunk={chunk} packet={p}"
        assert b.payload == s.payload, tag
        assert b.crc_ok == s.crc_ok, tag
        assert b.equalizer_mse == s.equalizer_mse, tag
        assert b.detection.offset == s.detection.offset, tag
        np.testing.assert_array_equal(b.levels_i, s.levels_i, err_msg=tag)
        np.testing.assert_array_equal(b.levels_q, s.levels_q, err_msg=tag)


def _timed_passes(run_pass, n_packets: int, n_passes: int):
    rates = []
    for _ in range(n_passes):
        t0 = time.perf_counter()
        run_pass()
        rates.append(n_packets / (time.perf_counter() - t0))
    return statistics.median(rates), rates


def run_benchmark(n_packets: int = 24, n_passes: int = 3, seed: int = 13) -> dict:
    sim, captures = build_grid(n_packets, seed)
    total_samples = int(sum(cap.samples.size for cap in captures))

    # Correctness first (doubles as warm-up for both engines).
    batch_outs = batch_pass(sim, captures)
    for chunk in CHUNK_SIZES:
        assert_bit_identical(batch_outs, streaming_pass(sim, captures, chunk), chunk)

    batch_pps, batch_raw = _timed_passes(
        lambda: batch_pass(sim, captures), n_packets, n_passes
    )
    stream_rates = {}
    stream_raw = {}
    for chunk in CHUNK_SIZES:
        pps, raw = _timed_passes(
            lambda: streaming_pass(sim, captures, chunk), n_packets, n_passes
        )
        stream_rates[chunk] = pps
        stream_raw[chunk] = raw

    default_chunk = CHUNK_SIZES[0]
    return {
        "benchmark": "streaming_receiver",
        "operating_point": {
            "n_packets": int(n_packets),
            "payload_bytes": 6,
            "total_samples": total_samples,
            "chunk_sizes": list(CHUNK_SIZES),
            "gated_chunk": int(default_chunk),
            "seed": int(seed),
        },
        "protocol": {
            "kind": "sustained full-grid decode, median of passes",
            "n_passes": int(n_passes),
            "bit_exact_checked": True,
            "min_relative_throughput": MIN_RELATIVE_THROUGHPUT,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "processor": platform.machine(),
        },
        "batch_pkt_per_s": round(batch_pps, 2),
        "streaming_pkt_per_s": {
            str(chunk): round(pps, 2) for chunk, pps in stream_rates.items()
        },
        "relative_throughput": {
            str(chunk): round(pps / batch_pps, 3) for chunk, pps in stream_rates.items()
        },
        "passes_pkt_per_s": {
            "batch": [round(r, 2) for r in batch_raw],
            **{
                f"streaming_{chunk}": [round(r, 2) for r in raw]
                for chunk, raw in stream_raw.items()
            },
        },
    }


def render(payload: dict) -> str:
    op = payload["operating_point"]
    rows = [("batch (one-shot)", payload["batch_pkt_per_s"], 1.0)]
    for chunk in op["chunk_sizes"]:
        rows.append(
            (
                f"streaming, chunk={chunk}",
                payload["streaming_pkt_per_s"][str(chunk)],
                payload["relative_throughput"][str(chunk)],
            )
        )
    return format_table(
        ["engine", "packets/s", "vs batch"],
        rows,
        title=(
            f"Streaming receiver - {op['n_packets']} captures, "
            f"{op['total_samples']} samples, bit-exact vs batch"
        ),
    )


@pytest.mark.slow
def test_bench_streaming():
    """Slow-lane smoke: regenerate BENCH_streaming.json and gate throughput.

    Bit-identity is asserted inside :func:`run_benchmark` for every chunk
    size before any rate is recorded; the gate then demands the default
    chunk size stays within 10% of batch throughput.
    """
    payload = run_benchmark()
    emit("BENCH_streaming_table", render(payload))
    path = emit_json("BENCH_streaming", payload)
    assert path.exists()
    gated = str(payload["operating_point"]["gated_chunk"])
    assert payload["relative_throughput"][gated] >= MIN_RELATIVE_THROUGHPUT, (
        f"streaming at chunk={gated} fell below "
        f"{MIN_RELATIVE_THROUGHPUT}x batch: {payload['relative_throughput']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=24)
    parser.add_argument("--passes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        n_packets=args.packets, n_passes=args.passes, seed=args.seed
    )
    emit("BENCH_streaming_table", render(payload))
    path = emit_json("BENCH_streaming", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
