"""Nightly kill-and-resume smoke for the crash-safe sweep engine.

The drill mirrors how a real long sweep dies and comes back:

1. run shard ``0/2`` of a demo grid and *kill it mid-journal* (the
   engine's deterministic ``crash_after`` fault hook — the process dies
   between two journal appends, exactly like a SIGKILL would land);
2. resume shard ``0/2`` over the torn journal;
3. run shard ``1/2`` into its own journal;
4. merge the two shard journals;
5. demand the merged rows are **bit-identical, row-for-row**, to an
   uninterrupted unsharded run of the same grid.

Exit status is non-zero on any mismatch.  Artifacts (the three journals,
the merged journal, and a JSON verdict) land under
``benchmarks/results/sweep_smoke/`` and are uploaded by the nightly CI
lane, so a failure ships the exact journals that disagreed.

Run from the repository root::

    PYTHONPATH=src python benchmarks/smoke_sweep_resume.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.batch import make_grid
from repro.experiments.sweep_demo import demo_task
from repro.experiments.sweeps import (
    SimulatedCrash,
    SweepRunner,
    canonical_records,
    journal_rows,
    merge_journals,
)

SMOKE_DIR = Path(__file__).parent / "results" / "sweep_smoke"
ROOT_SEED = 97
CRASH_AFTER = 2  # journal appends before the injected kill (1 header + 1 task)


def build_tasks():
    schemes = {name: {"gain": g} for name, g in [("mono", 1.0), ("lcd", 1.7), ("turbo", 2.4)]}
    return make_grid(schemes, [1.0, 2.0, 3.0, 4.0], "x")


def main() -> int:
    SMOKE_DIR.mkdir(parents=True, exist_ok=True)
    for stale in SMOKE_DIR.glob("*.jsonl"):
        stale.unlink()
    tasks = build_tasks()

    single = SMOKE_DIR / "single.jsonl"
    SweepRunner(demo_task, single, root_seed=ROOT_SEED).run(tasks)

    shard0 = SMOKE_DIR / "shard0.jsonl"
    crashed = False
    try:
        SweepRunner(
            demo_task, shard0, root_seed=ROOT_SEED, shard="0/2", crash_after=CRASH_AFTER
        ).run(tasks)
    except SimulatedCrash:
        crashed = True
    resumed = SweepRunner(demo_task, shard0, root_seed=ROOT_SEED, shard="0/2").run(tasks)

    shard1 = SMOKE_DIR / "shard1.jsonl"
    SweepRunner(demo_task, shard1, root_seed=ROOT_SEED, shard="1/2").run(tasks)

    merged = SMOKE_DIR / "merged.jsonl"
    merge_journals([shard0, shard1], merged)

    rows_match = journal_rows(merged) == journal_rows(single)
    records_match = canonical_records(merged) == canonical_records(single)
    checks = {
        "crash_injected": crashed,
        "resume_executed_remainder": resumed.executed > 0 and resumed.replayed > 0,
        "merged_rows_bit_identical": rows_match,
        "merged_records_bit_identical": records_match,
    }
    verdict = {
        "n_tasks": len(tasks),
        "resumed_executed": resumed.executed,
        "resumed_replayed": resumed.replayed,
        "checks": checks,
        "ok": all(checks.values()),
    }
    (SMOKE_DIR / "verdict.json").write_text(json.dumps(verdict, indent=2) + "\n")
    for name, ok in checks.items():
        print(f"{'PASS' if ok else 'FAIL'}  {name}")
    if not verdict["ok"]:
        print(f"smoke FAILED; journals kept under {SMOKE_DIR}", file=sys.stderr)
        return 1
    print(f"kill-and-resume smoke OK ({len(tasks)} tasks, 2 shards); artifacts in {SMOKE_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
