"""Fleet round-engine scaling: vectorized store vs frozen scalar reference.

The committed artifact ``benchmarks/results/BENCH_fleet.json`` records, for
a fixed chaos deployment (3 readers, occlusion scenario, 90 TDMA rounds),
the vectorized engine's wall-clock and throughput at fleet sizes from one
thousand to one million tags, plus the frozen scalar reference's time at
the gated size.

Protocol:

* **Bit-identity is asserted in the same run** — at the small sizes both
  engines run and their ``row()`` records (including ``timeline_digest``)
  and per-tag ``snapshot()`` states must match field-for-field before any
  timing is trusted.
* **One timed run per (engine, size)** — a fleet run is already a
  sustained workload (hundreds of rounds); run-to-run noise is far below
  the gated margin.
* **Gate**: at the gated size (100k tags) the vectorized engine must
  complete the same scenario at least ``MIN_SPEEDUP``x faster than the
  scalar reference.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py            # full artifact
    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py  # slow-lane smoke
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np
import pytest

from _common import emit, emit_json, format_table

from repro.faults.network import NETWORK_SCENARIOS
from repro.network.fleet import FleetConfig, FleetSimulator

#: Fleet sizes measured for the vectorized engine.
SIZES = (1_000, 10_000, 100_000, 1_000_000)

#: Sizes at which the scalar reference also runs, with full bit-identity
#: asserts (row + per-tag snapshots) before timings are recorded.
IDENTITY_SIZES = (1_000, 10_000)

#: Size at which the speedup gate applies (the reference runs here too).
GATED_SIZE = 100_000

#: The vectorized engine must beat the reference by at least this factor
#: at the gated size.
MIN_SPEEDUP = 5.0

#: Chaos scenario played against every deployment.
SCENARIO = "occlusion"

SEED = 3


def build_config(n_tags: int) -> FleetConfig:
    """The benchmark deployment: airtime-saturated rounds, ample queues.

    ``queue_capacity=n_tags`` keeps admission un-sheared so runs across
    sizes exercise the same code paths; the small payload and overhead
    maximize served slots per round, which is the serving engines' axis.
    """
    return FleetConfig(
        n_readers=3,
        n_tags=n_tags,
        duration_s=90.0,
        queue_capacity=n_tags,
        airtime_duty=1.0,
        payload_bytes=8,
        overhead_s=0.002,
    )


def run_once(n_tags: int, engine: str):
    cfg = build_config(n_tags)
    plan = NETWORK_SCENARIOS[SCENARIO](cfg.duration_s)
    sim = FleetSimulator(cfg, fault_plan=plan, root_seed=SEED, engine=engine)
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def assert_bit_identical(ref, vec, n_tags: int) -> None:
    tag = f"n_tags={n_tags}"
    assert ref.row() == vec.row(), tag  # includes the timeline_digest
    for tag_ref, tag_vec in zip(ref.tags, vec.tags):
        assert tag_ref.link.snapshot() == tag_vec.link.snapshot(), tag
    assert ref.transitions == vec.transitions, tag
    assert ref.handoff_log == vec.handoff_log, tag


def run_benchmark() -> dict:
    store_wall: dict[int, float] = {}
    store_rows: dict[int, dict] = {}
    reference_wall: dict[int, float] = {}

    for n_tags in SIZES:
        wall, result = run_once(n_tags, "store")
        store_wall[n_tags] = wall
        store_rows[n_tags] = result.row()
        if n_tags in IDENTITY_SIZES or n_tags == GATED_SIZE:
            ref_wall, ref_result = run_once(n_tags, "reference")
            reference_wall[n_tags] = ref_wall
            if n_tags in IDENTITY_SIZES:
                assert_bit_identical(ref_result, result, n_tags)
            else:
                # Full per-tag compare is wasteful at the gated size; the
                # digest + counters pin the dynamics.
                assert ref_result.row() == result.row(), f"n_tags={n_tags}"

    n_rounds = int(build_config(SIZES[0]).duration_s)  # round_interval_s=1
    speedup = reference_wall[GATED_SIZE] / store_wall[GATED_SIZE]
    return {
        "benchmark": "fleet_scale",
        "operating_point": {
            "scenario": SCENARIO,
            "n_readers": 3,
            "duration_s": 90.0,
            "n_rounds": n_rounds,
            "sizes": list(SIZES),
            "identity_checked_sizes": list(IDENTITY_SIZES),
            "gated_size": GATED_SIZE,
            "seed": SEED,
        },
        "protocol": {
            "kind": "single sustained chaos run per engine and size",
            "bit_exact_checked": True,
            "min_speedup": MIN_SPEEDUP,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "processor": platform.machine(),
        },
        "store_wall_s": {str(n): round(w, 3) for n, w in store_wall.items()},
        "reference_wall_s": {str(n): round(w, 3) for n, w in reference_wall.items()},
        "store_tag_rounds_per_s": {
            str(n): round(n * n_rounds / w, 1) for n, w in store_wall.items()
        },
        "speedup_at_gated_size": round(speedup, 2),
        "delivered": {str(n): row["delivered"] for n, row in store_rows.items()},
        "timeline_digest": {
            str(n): row["timeline_digest"] for n, row in store_rows.items()
        },
    }


def render(payload: dict) -> str:
    op = payload["operating_point"]
    rows = []
    for n in op["sizes"]:
        key = str(n)
        ref = payload["reference_wall_s"].get(key)
        rows.append(
            (
                f"{n:,} tags",
                payload["store_wall_s"][key],
                payload["store_tag_rounds_per_s"][key],
                ref if ref is not None else "-",
                round(ref / payload["store_wall_s"][key], 2) if ref else "-",
            )
        )
    return format_table(
        ["fleet size", "store wall (s)", "tag-rounds/s", "reference wall (s)", "speedup"],
        rows,
        title=(
            f"Vectorized fleet round engine - {op['scenario']} chaos, "
            f"{op['n_readers']} readers, {op['n_rounds']} rounds, "
            f"bit-exact vs frozen scalar reference"
        ),
    )


@pytest.mark.slow
def test_bench_fleet_scale():
    """Slow-lane smoke: regenerate BENCH_fleet.json and gate the speedup.

    Bit-identity (rows + per-tag snapshots at the small sizes, rows at the
    gated size) is asserted inside :func:`run_benchmark` before any timing
    is recorded; the gate then demands >= MIN_SPEEDUP x at 100k tags.
    """
    payload = run_benchmark()
    emit("BENCH_fleet_table", render(payload))
    path = emit_json("BENCH_fleet", payload)
    assert path.exists()
    assert payload["speedup_at_gated_size"] >= MIN_SPEEDUP, (
        f"vectorized engine fell below {MIN_SPEEDUP}x the scalar reference "
        f"at {GATED_SIZE:,} tags: {payload['speedup_at_gated_size']}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    payload = run_benchmark()
    emit("BENCH_fleet_table", render(payload))
    path = emit_json("BENCH_fleet", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
