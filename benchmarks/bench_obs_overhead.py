"""Observability overhead on the DFE hot path: the < 3% disabled budget.

The observability subsystem's core promise (DESIGN.md §9) is that the
*disabled* path — the default, every constructor resolving ``observer=None``
to the no-op singleton — costs effectively nothing on the hot path.  This
benchmark enforces that promise honestly, as an **in-run A/B on the same
grid**: the same ``DFEDemodulator`` workload decoded with the no-op
observer and with a fully enabled metrics+tracing observer, interleaved
pass-by-pass so both arms see the same thermal/scheduler environment.

Reported numbers:

* ``disabled_sym_per_s`` / ``enabled_sym_per_s`` — block-decode throughput
  with the NULL observer vs a recording :class:`~repro.obs.Observer`;
* ``disabled_overhead_pct`` — disabled-arm cost relative to a demodulator
  built before the observability subsystem could even be attached (the
  constructor simply never mentions ``observer``), which is the exact
  "did merely *having* hooks slow the old code down" question;
* ``null_span_ns`` / ``null_count_ns`` — per-call cost of a disabled
  ``with obs.span(...)`` and ``obs.count(...)``, measured over 100k calls.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py            # artifact
    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py  # slow lane

CI's nightly lane asserts ``disabled_overhead_pct < 3`` and uploads the
JSON artifact next to ``BENCH_dfe.json``.
"""

from __future__ import annotations

import argparse
import platform
import statistics
import time

import numpy as np
import pytest

from _common import emit, emit_json, format_table

from bench_dfe_speed import build_grid
from repro.modem.config import preset_for_rate
from repro.modem.dfe import DFEDemodulator
from repro.modem.references import ReferenceBank
from repro.obs import NULL_OBSERVER, Observer

#: The disabled path must stay within this fraction of baseline throughput.
OVERHEAD_BUDGET_PCT = 3.0


def _median_rate(decode_pass, total_symbols: int, n_passes: int) -> float:
    rates = []
    for _ in range(n_passes):
        t0 = time.perf_counter()
        decode_pass()
        rates.append(total_symbols / (time.perf_counter() - t0))
    return statistics.median(rates)


def _interleaved_ab(passes: dict, total_symbols: int, n_passes: int) -> dict[str, float]:
    """Median throughput per arm, arms interleaved within each round."""
    rates: dict[str, list[float]] = {name: [] for name in passes}
    for _ in range(n_passes):
        for name, fn in passes.items():
            t0 = time.perf_counter()
            fn()
            rates[name].append(total_symbols / (time.perf_counter() - t0))
    return {name: statistics.median(rs) for name, rs in rates.items()}


def _null_hook_costs(n_calls: int = 100_000) -> dict[str, float]:
    """Per-call nanosecond cost of disabled span/count hooks."""
    obs = NULL_OBSERVER

    t0 = time.perf_counter()
    for _ in range(n_calls):
        with obs.span("equalize"):
            pass
    span_ns = (time.perf_counter() - t0) / n_calls * 1e9

    t0 = time.perf_counter()
    for _ in range(n_calls):
        obs.count("phy.packets_total")
    count_ns = (time.perf_counter() - t0) / n_calls * 1e9
    return {"null_span_ns": round(span_ns, 1), "null_count_ns": round(count_ns, 1)}


def run_benchmark(
    rate_bps: float = 8000,
    k_branches: int = 16,
    n_packets: int = 48,
    n_symbols: int = 128,
    n_passes: int = 5,
    seed: int = 7,
) -> dict:
    config = preset_for_rate(rate_bps)
    bank = ReferenceBank.nominal(config)
    z_block, zeros = build_grid(config, bank, n_packets, n_symbols, seed)
    total = n_packets * n_symbols

    bare = DFEDemodulator(bank, k_branches=k_branches)  # observer never mentioned
    disabled = DFEDemodulator(bank, k_branches=k_branches, observer=None)
    enabled_obs = Observer(trace=False)  # metrics only: the sweep configuration
    enabled = DFEDemodulator(bank, k_branches=k_branches, observer=enabled_obs)

    # Warm-up + correctness: all three arms must produce identical levels.
    ref = bare.demodulate_block(z_block, n_symbols, (zeros, zeros))
    for arm_name, arm in (("disabled", disabled), ("enabled", enabled)):
        got = arm.demodulate_block(z_block, n_symbols, (zeros, zeros))
        for p, (r, g) in enumerate(zip(ref, got)):
            np.testing.assert_array_equal(
                r.levels_i, g.levels_i, err_msg=f"{arm_name} packet {p} levels_i"
            )
            np.testing.assert_array_equal(
                r.levels_q, g.levels_q, err_msg=f"{arm_name} packet {p} levels_q"
            )

    medians = _interleaved_ab(
        {
            "bare": lambda: bare.demodulate_block(z_block, n_symbols, (zeros, zeros)),
            "disabled": lambda: disabled.demodulate_block(z_block, n_symbols, (zeros, zeros)),
            "enabled": lambda: enabled.demodulate_block(z_block, n_symbols, (zeros, zeros)),
        },
        total,
        n_passes,
    )
    overhead_pct = (medians["bare"] / medians["disabled"] - 1.0) * 100.0
    enabled_pct = (medians["bare"] / medians["enabled"] - 1.0) * 100.0

    return {
        "benchmark": "obs_overhead",
        "operating_point": {
            "rate_bps": float(rate_bps),
            "k_branches": int(k_branches),
            "n_packets": int(n_packets),
            "n_symbols_per_packet": int(n_symbols),
            "seed": int(seed),
        },
        "protocol": {
            "kind": "interleaved A/B block decode, median of passes",
            "n_passes": int(n_passes),
            "bit_exact_checked": True,
            "budget_pct": OVERHEAD_BUDGET_PCT,
        },
        "machine": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "processor": platform.machine(),
        },
        "bare_sym_per_s": round(medians["bare"], 1),
        "disabled_sym_per_s": round(medians["disabled"], 1),
        "enabled_sym_per_s": round(medians["enabled"], 1),
        "disabled_overhead_pct": round(overhead_pct, 2),
        "enabled_overhead_pct": round(enabled_pct, 2),
        **_null_hook_costs(),
    }


def render(payload: dict) -> str:
    rows = [
        ("no observer arg", payload["bare_sym_per_s"], 0.0),
        ("observer=None (NULL)", payload["disabled_sym_per_s"], payload["disabled_overhead_pct"]),
        ("enabled (metrics)", payload["enabled_sym_per_s"], payload["enabled_overhead_pct"]),
    ]
    return format_table(
        ["configuration", "symbols/s", "overhead %"],
        rows,
        title=(
            f"observability overhead on the DFE hot path "
            f"(budget {payload['protocol']['budget_pct']:g}% disabled)"
        ),
    )


@pytest.mark.slow
def test_bench_obs_overhead():
    """Slow-lane gate: disabled-mode instrumentation overhead under budget.

    The comparison is in-run (same grid, interleaved passes), so the
    assertion is robust to machine speed; a small negative overhead just
    means noise, which the budget absorbs.
    """
    payload = run_benchmark()
    emit("BENCH_obs_table", render(payload))
    path = emit_json("BENCH_obs_overhead", payload)
    assert path.exists()
    assert payload["disabled_overhead_pct"] < OVERHEAD_BUDGET_PCT, (
        f"disabled observability costs {payload['disabled_overhead_pct']:.2f}% "
        f"on the DFE hot path (budget {OVERHEAD_BUDGET_PCT}%)"
    )
    # Null hooks must stay sub-microsecond — they sit inside per-packet code.
    assert payload["null_span_ns"] < 5_000
    assert payload["null_count_ns"] < 5_000


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate-bps", type=float, default=8000)
    parser.add_argument("--k-branches", type=int, default=16)
    parser.add_argument("--packets", type=int, default=48)
    parser.add_argument("--symbols", type=int, default=128)
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        rate_bps=args.rate_bps,
        k_branches=args.k_branches,
        n_packets=args.packets,
        n_symbols=args.symbols,
        n_passes=args.passes,
        seed=args.seed,
    )
    emit("BENCH_obs_table", render(payload))
    path = emit_json("BENCH_obs_overhead", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
