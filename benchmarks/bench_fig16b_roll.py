"""Fig 16b — BER versus roll (polarization) misalignment.

Paper: "the influence of roll angular misalignment is almost negligible"
at any angle — PQAM's rotation tolerance plus preamble correction.  Shape
target: flat, reliable BER across the full 0-180deg sweep at working range.
"""

import numpy as np
from _common import emit, format_table

from repro.experiments.fig16 import roll_sweep


def test_fig16b_roll(benchmark):
    points = roll_sweep(
        roll_degs=[0, 22.5, 45, 67.5, 90, 120, 150, 180],
        distance_m=4.5,
        n_packets=5,
        rng=12,
    )
    rows = [(p.x, f"{p.ber:.4f}", "reliable" if p.ber < 0.01 else "NOT") for p in points]
    emit(
        "fig16b_roll",
        format_table(
            ["roll deg", "BER", "verdict"],
            rows,
            title="Fig 16b - BER vs roll misalignment (paper: negligible effect)",
        ),
    )
    bers = np.array([p.ber for p in points])
    assert bers.max() < 0.01, "every roll angle must stay reliable"

    from repro.experiments.common import make_simulator

    sim = make_simulator(distance_m=5.0, roll_deg=45.0, payload_bytes=16, rng=3)
    benchmark(sim.run_packet, rng=4)
