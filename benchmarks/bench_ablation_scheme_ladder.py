"""Ablation — the modulation-scheme ladder the paper climbs.

From the status quo to the contribution: trend OOK (250 bps), multi-pixel
PAM (1 Kbps), basic DSM (~1.07 Kbps at L=8), then overlapped DSM + PQAM
(8 Kbps prototype default).  Each scheme is demonstrated *working* (clean
round-trip on its own receiver at good SNR) at its rate, so the ladder is
earned rather than quoted.
"""

import numpy as np
from _common import emit, format_table

from repro.channel.awgn import add_awgn
from repro.lcm.array import LCMArray
from repro.modem.config import ModemConfig
from repro.modem.dsm import BasicDSMModem
from repro.modem.ook import TrendOOKModem
from repro.modem.pam import MultiPixelPAMModem
from repro.experiments.fig18 import emulated_packet_ber

SNR_DB = 35.0


def _ber_ook() -> tuple[float, float]:
    modem = TrendOOKModem(LCMArray.build(2, 16), symbol_s=4e-3, fs=20e3)
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, 64, dtype=np.uint8)
    x = add_awgn(modem.modulate(bits), SNR_DB, reference_power=2.0, rng=rng)
    errors = int(np.count_nonzero(modem.demodulate(x, bits.size) != bits))
    return modem.rate_bps, errors / bits.size


def _ber_pam() -> tuple[float, float]:
    modem = MultiPixelPAMModem(LCMArray.build(2, 16), symbol_s=4e-3, fs=20e3)
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, 64, dtype=np.uint8)
    x = add_awgn(modem.modulate(bits), SNR_DB, reference_power=0.5, rng=rng)
    errors = int(np.count_nonzero(modem.demodulate(x, 16) != bits))
    return modem.rate_bps, errors / bits.size


def _ber_basic_dsm() -> tuple[float, float]:
    modem = BasicDSMModem(LCMArray.build(8, 4), slot_s=0.5e-3, tau0_s=3.5e-3, fs=20e3)
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, 64, dtype=np.uint8)
    x = add_awgn(modem.modulate(bits), SNR_DB, reference_power=1.0, rng=rng)
    errors = int(np.count_nonzero(modem.demodulate(x, bits.size) != bits))
    return modem.rate_bps, errors / bits.size


def _ber_dsm_pqam() -> tuple[float, float]:
    config = ModemConfig()  # 8 Kbps
    return config.rate_bps, emulated_packet_ber(config, SNR_DB, n_symbols=96, rng=4)


def test_ablation_scheme_ladder(benchmark):
    ladder = [
        ("trend OOK (PassiveVLC)", *_ber_ook()),
        ("multi-pixel PAM [10]", *_ber_pam()),
        ("basic DSM (§4.1.1)", *_ber_basic_dsm()),
        ("DSM + PQAM (§4.1.2/4.2)", *_ber_dsm_pqam()),
    ]
    rows = [
        (name, f"{rate / 1000:.2f} kbps", f"{rate / 250:.1f}x", f"{ber:.4f}")
        for name, rate, ber in ladder
    ]
    emit(
        "ablation_scheme_ladder",
        format_table(
            ["scheme", "rate", "vs OOK", f"BER @ {SNR_DB:.0f} dB"],
            rows,
            title="Ablation - the modulation ladder, each rung demonstrated",
        ),
    )
    rates = [rate for _, rate, _ in ladder]
    assert rates == sorted(rates), "each rung must be faster than the last"
    assert all(ber < 0.01 for _, _, ber in ladder), "every rung must work at 35 dB"
    assert rates[-1] / rates[0] == 32.0

    benchmark(_ber_basic_dsm)
