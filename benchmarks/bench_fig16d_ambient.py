"""Fig 16d — BER under different ambient light conditions.

Paper: "RetroTurbo behaves consistently regardless of the illumination
level" — ambient light is DC-rejected by the 455 kHz passband and only its
shot noise leaks in.  Shape target: dark (20 lux), night (200 lux) and day
(1000 lux) all reliable with no meaningful ordering.
"""

from _common import emit, format_table

from repro.experiments.fig16 import ambient_sweep

PAPER_NOTE = {"dark": "20 lux", "night": "200 lux (default)", "day": "1000 lux"}


def test_fig16d_ambient(benchmark):
    out = ambient_sweep(distance_m=5.0, n_packets=4, rng=14)
    rows = [(name, PAPER_NOTE[name], f"{p.ber:.4f}") for name, p in out.items()]
    emit(
        "fig16d_ambient",
        format_table(
            ["condition", "illuminance", "BER"],
            rows,
            title="Fig 16d - BER vs ambient light (paper: flat)",
        ),
    )
    assert all(p.ber < 0.01 for p in out.values()), "all conditions must be reliable"

    from repro.experiments.common import make_simulator
    from repro.optics.ambient import AMBIENT_PRESETS

    sim = make_simulator(distance_m=5.0, ambient=AMBIENT_PRESETS["day"], payload_bytes=16, rng=7)
    benchmark(sim.run_packet, rng=8)
