"""Fig 18b — goodput versus SNR with Reed-Solomon coding.

Paper: a 32 Kbps link with light RS coding beats both the raw 32 Kbps and
raw 16 Kbps links across a ~22 dB SNR span, at the cost of only 1/64 of
peak throughput (RS(255, 251)); heavier coding widens the working span at
lower peaks.  Shape targets: coded peak ~= (k/n) x raw peak; the coded
curve dominates raw in some mid-SNR window; heavier codes reach lower SNR.
"""

import numpy as np
from _common import emit, format_table

from repro.experiments.fig18 import coding_goodput_sweep, emulated_ber_vs_snr
from repro.mac.rate_adapt import CodingOption


def first_useful_snr(series, fraction=0.5):
    """Lowest SNR where goodput reaches `fraction` of the series' peak."""
    peak = max(g for _, g in series)
    for snr, g in series:
        if g >= fraction * peak:
            return snr
    return float("inf")


def test_fig18b_coding_gain(benchmark):
    waterfalls = emulated_ber_vs_snr(
        rates_bps=[16000, 32000],
        snrs_db=[10, 15, 20, 25, 30, 35, 40, 45, 50],
        n_symbols=160,
        n_packets=2,
        rng=32,
    )
    out = coding_goodput_sweep(
        waterfalls=waterfalls,
        rates_bps=[16000, 32000],
        codings=[CodingOption(255, 255), CodingOption(255, 251), CodingOption(255, 223), CodingOption(255, 127)],
        snrs_db=list(np.arange(12.0, 50.1, 2.0)),
    )
    rows = []
    for label, series in sorted(out.items()):
        peak = max(g for _, g in series)
        rows.append((label, f"{peak / 1000:.2f} kbps", f"{first_useful_snr(series):.0f} dB"))
    emit(
        "fig18b_coding",
        format_table(
            ["series", "peak goodput", "SNR @ half peak"],
            rows,
            title="Fig 18b - goodput vs SNR with RS coding + stop-and-wait",
        ),
    )
    raw32 = dict(out["32k_raw"])
    light32 = dict(out["32k_rs255_251"])
    heavy32 = dict(out["32k_rs255_127"])
    # Light coding costs ~1/64 of peak...
    assert max(light32.values()) / max(raw32.values()) > 0.97
    # ...and beats raw somewhere below the raw threshold.
    assert any(light32[s] > raw32[s] * 1.5 for s in light32)
    # Heavier coding works at lower SNR than light coding.
    assert first_useful_snr(sorted(heavy32.items())) <= first_useful_snr(sorted(light32.items()))

    from repro.coding.reed_solomon import RSCodec

    rs = RSCodec(255, 223)
    msg = bytes(range(223))
    benchmark(lambda: rs.decode(rs.encode(msg)))
