"""Extension — the fast-LC material ladder (paper conclusion).

"The RetroTurbo design can be easily applied on much faster switching
liquid crystal (e.g., CCN-47 with 30 ns and ferroelectric with 20 us
restoration time)".  This benchmark runs the *same* modulation stack on
time-scaled LC parameters and demonstrates the ferroelectric point decodes
at Mbps-class rates; CCN-47's implied optical-medium rate is reported but
not simulated (electronics, not the LC, would bound it).
"""

from _common import emit, format_table

from repro.experiments.fig18 import emulated_packet_ber
from repro.lcm.response import LCParams
from repro.modem.config import ModemConfig
from repro.modem.references import ReferenceBank

FERRO_SCALE = 20e-6 / 3.5e-3
CCN47_SCALE = 30e-9 / 3.5e-3


def test_ablation_fast_lc(benchmark):
    base = ModemConfig()
    ferro_cfg = base.scaled_to_material(FERRO_SCALE)
    ferro_bank = ReferenceBank.nominal(ferro_cfg, params=LCParams.ferroelectric())
    ferro_ber = emulated_packet_ber(ferro_cfg, snr_db=35.0, n_symbols=96, rng=1, bank=ferro_bank)
    cots_ber = emulated_packet_ber(base, snr_db=35.0, n_symbols=96, rng=1)
    ccn_rate = base.scaled_to_material(CCN47_SCALE).rate_bps

    rows = [
        ("COTS TN (prototype)", f"{base.rate_bps / 1e3:.0f} Kbps", f"{cots_ber:.4f}"),
        ("ferroelectric [15]", f"{ferro_cfg.rate_bps / 1e6:.2f} Mbps", f"{ferro_ber:.4f}"),
        ("CCN-47 [14]", f"{ccn_rate / 1e6:.0f} Mbps", "optical limit (not simulated)"),
    ]
    emit(
        "ablation_fast_lc",
        format_table(
            ["material", "raw rate (L=8, P=16)", "BER @ 35 dB"],
            rows,
            title="Extension - same modulation stack on faster LC materials",
        ),
    )
    assert ferro_cfg.rate_bps > 1e6, "ferroelectric must reach Mbps class"
    assert ferro_ber < 0.01, "the stack must decode unchanged on fast LC"
    assert cots_ber < 0.01

    benchmark(
        emulated_packet_ber, ferro_cfg, 35.0, 32, 16, 2, ferro_bank
    )
