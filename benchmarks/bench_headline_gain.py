"""Headline result — 32x experimental / 128x emulated rate gain over OOK.

Paper abstract: "RetroTurbo demonstrates 32x and 128x rate gain via
experiments and emulation respectively".  The OOK baseline is trend
keying at W = 4 ms (250 bps); the prototype runs 8 Kbps and emulation
reaches 32 Kbps.  This benchmark also demonstrates both endpoints actually
work: the OOK modem round-trips bits and the 32 Kbps preset decodes its
emulated waveform at high SNR.
"""

import numpy as np
from _common import emit, format_table

from repro.experiments.fig18 import emulated_packet_ber
from repro.experiments.micro import headline_rate_gain
from repro.lcm.array import LCMArray
from repro.modem.config import preset_for_rate
from repro.modem.ook import TrendOOKModem


def test_headline_rate_gain(benchmark):
    gains = headline_rate_gain()

    # Endpoint 1: the OOK baseline actually communicates at 250 bps.
    ook = TrendOOKModem(LCMArray.build(2, 16), symbol_s=4e-3, fs=20e3)
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 32, dtype=np.uint8)
    decoded = ook.demodulate(ook.modulate(bits), bits.size)
    ook_ok = bool(np.array_equal(decoded, bits))

    # Endpoint 2: the 32 Kbps preset decodes in emulation at high SNR.
    ber32 = emulated_packet_ber(preset_for_rate(32000), snr_db=55.0, n_symbols=128, rng=1)

    rows = [
        ("OOK baseline", f"{gains['ook_bps']:.0f} bps", "round-trip ok" if ook_ok else "BROKEN"),
        ("experimental (8 Kbps)", f"{gains['experimental_gain']:.0f}x", "paper: 32x"),
        ("emulated (32 Kbps)", f"{gains['emulated_gain']:.0f}x", "paper: 128x"),
        ("32 Kbps BER @ 55 dB", f"{ber32:.4f}", "paper: < 1%"),
    ]
    emit(
        "headline_gain",
        format_table(["quantity", "value", "note"], rows, title="Headline rate gains over OOK"),
    )
    assert ook_ok
    assert gains["experimental_gain"] == 32.0
    assert gains["emulated_gain"] == 128.0
    assert ber32 < 0.01

    benchmark(emulated_packet_ber, preset_for_rate(32000), 55.0, 32, 16, 2)
