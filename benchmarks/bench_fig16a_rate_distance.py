"""Fig 16a — BER versus LoS distance per uplink rate.

Paper: the 8 Kbps link is reliable (BER < 1%) to ~7.5 m and 4 Kbps to
~10.5 m.  Shape targets: BER monotone-ish in distance, 4 Kbps outranging
8 Kbps by roughly the 1.4x the paper reports.
"""

from _common import emit, format_table

from repro.experiments.fig16 import rate_vs_distance, working_range

PAPER_RANGE = {4000: 10.5, 8000: 7.5}


def test_fig16a_rate_vs_distance(benchmark):
    out = rate_vs_distance(
        rates_bps=[4000, 8000],
        distances_m=[3.0, 5.0, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5],
        n_packets=5,
        payload_bytes=24,
        rng=11,
    )
    rows = []
    for rate, points in out.items():
        for p in points:
            rows.append((f"{rate / 1000:g}k", p.x, f"{p.extras['snr_db']:.1f}", f"{p.ber:.4f}"))
    ranges = {rate: working_range(points) for rate, points in out.items()}
    rows.append(("-", "-", "-", "-"))
    for rate, rng_m in ranges.items():
        rows.append((f"{rate / 1000:g}k range", rng_m, f"paper {PAPER_RANGE[rate]}", "m"))
    emit(
        "fig16a_rate_distance",
        format_table(
            ["rate", "distance m", "SNR dB", "BER"],
            rows,
            title="Fig 16a - BER vs distance (working range at BER < 1%)",
        ),
    )
    assert ranges[4000] > ranges[8000], "the slower link must reach farther"
    assert 6.0 <= ranges[8000] <= 9.5, "8 Kbps range should sit near the paper's 7.5 m"
    assert 8.5 <= ranges[4000] <= 12.0, "4 Kbps range should sit near the paper's 10.5 m"

    from repro.experiments.common import make_simulator

    sim = make_simulator(rate_bps=8000, distance_m=5.0, payload_bytes=16, rng=1)
    benchmark(sim.run_packet, rng=2)
