"""Ablation — flicker: polarization modulation vs intensity shutters.

Paper §2.1: OOK/PAM on an LCD shutter flickers at the (slow) symbol rate,
"to potentially impair people's inclination to make use of such
techniques, which can be solved by polarized light communication".
RetroTurbo's LCM modulates only polarization, so the total reflected
intensity an eye integrates is constant.  Expected shape: LCM percent
flicker ~ 0; LCD-shutter OOK flicker large at eye-visible rates.
"""

import numpy as np
from _common import emit, format_table

from repro.lcm.array import LCMArray
from repro.lcm.flicker import flicker_index, percent_flicker, perceived_intensity


def test_ablation_flicker(benchmark):
    array = LCMArray.build(8, 4)
    rng = np.random.default_rng(5)
    drive = rng.integers(0, 2, (array.n_pixels, 60), dtype=np.uint8)
    lcm = perceived_intensity(array, drive, 0.5e-3, 20e3)
    shutter = perceived_intensity(array, drive, 0.5e-3, 20e3, front_polarizer=True)
    # OOK flicker at the 250 bps baseline: whole-array keying at 4 ms.
    ook_drive = np.tile(rng.integers(0, 2, 15, dtype=np.uint8), (array.n_pixels, 1))
    ook = perceived_intensity(array, ook_drive, 4e-3, 20e3, front_polarizer=True)

    rows = [
        ("RetroTurbo LCM (DSM-PQAM)", f"{percent_flicker(lcm):.2%}", f"{flicker_index(lcm):.4f}"),
        ("LCD shutter, same drive", f"{percent_flicker(shutter):.2%}", f"{flicker_index(shutter):.4f}"),
        ("LCD shutter, 250 bps OOK", f"{percent_flicker(ook):.2%}", f"{flicker_index(ook):.4f}"),
    ]
    emit(
        "ablation_flicker",
        format_table(
            ["configuration", "percent flicker", "flicker index"],
            rows,
            title="Ablation - visible flicker (paper §2.1: polarization solves it)",
        ),
    )
    assert percent_flicker(lcm) < 1e-6, "polarization modulation must not flicker"
    assert percent_flicker(ook) > 0.5, "shutter OOK must flicker hard"

    benchmark(perceived_intensity, array, drive, 0.5e-3, 20e3)
