"""Table 3 — minimum distance D and relative demodulation threshold at the
optimal (L, P) parameters per rate.

Paper: 1 Kbps -> 0 dB (reference), 4 Kbps -> 20 dB, 8 Kbps -> 28 dB,
12 Kbps -> 31 dB, 16 Kbps -> 33 dB.  Shape target: monotone threshold
growth with rate, ~20 dB to 4 Kbps and high twenties to 8 Kbps.
"""

from _common import emit, format_table

from repro.analysis.optimizer import optimal_parameters, relative_threshold_table

PAPER_THRESHOLD = {1000: 0.0, 4000: 20.0, 8000: 28.0, 12000: 31.0, 16000: 33.0}
PAPER_D = {1000: 8.7, 4000: 9.0e-2, 8000: 1.5e-2, 12000: 7.8e-3, 16000: 4.0e-3}


def test_table3_thresholds(benchmark):
    rates = [1000, 4000, 8000, 12000, 16000]
    measured = relative_threshold_table(rates, n_contexts=3, rng=3)
    rows = [
        (
            f"{r / 1000:g}k",
            f"{PAPER_D[r]:.2g}",
            f"{d:.3g}",
            f"{PAPER_THRESHOLD[r]:.0f} dB",
            f"{th:.1f} dB",
        )
        for r, d, th in measured
    ]
    emit(
        "table3_thresholds",
        format_table(
            ["rate", "paper D", "measured D", "paper rel thr", "measured rel thr"],
            rows,
            title="Table 3 - demodulation threshold of optimal parameters",
        ),
    )
    ths = {r: th for r, _, th in measured}
    assert ths[1000] == 0.0
    assert ths[1000] < ths[4000] < ths[8000] <= ths[12000] <= ths[16000]
    assert 14.0 < ths[4000] < 26.0, "4 Kbps should sit near the paper's 20 dB"
    assert 23.0 < ths[8000] < 35.0, "8 Kbps should sit near the paper's 28 dB"

    benchmark(optimal_parameters, 4000, n_contexts=1, rng=3)
